// Passive RTT vantage points, pinned end to end:
//
//   * PpingEstimator unit behavior — TSval/TSecr matching, first-seen-wins
//     under retransmission, match-once under duplicated/reordered echoes,
//     stale + capacity eviction, collided/non-TCP/unwatched filtering.
//   * PerAppMonitor unit behavior — probe-id pairing at the app boundary.
//   * Fig. 2 exactness — with a noiseless sniffer the estimator's samples
//     EQUAL (EXPECT_EQ, not NEAR) the air-stamp dn of each probe, and the
//     per-app monitor's samples EQUAL t_u^i - t_u^o from the stamps.
//   * Zero steady-state heap allocations on both observe paths (counting
//     global allocator) and zero Packet copies (thread-local copy probe).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "net/packet.hpp"
#include "passive/per_app.hpp"
#include "passive/pping.hpp"
#include "sim/contracts.hpp"
#include "testbed/testbed.hpp"
#include "tools/factory.hpp"
#include "tools/httping.hpp"
#include "tools/java_ping.hpp"

namespace {
// Plain (non-atomic) counter: these tests are single-threaded.
std::size_t g_heap_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_heap_allocations;
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  void* p = std::aligned_alloc(al, rounded == 0 ? al : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// Nothrow variants too: libstdc++ internals (stable_sort's temporary
// buffer) allocate with new(nothrow) but free through plain delete — an
// incomplete replacement pairs the runtime's allocator with our free,
// which ASan rejects as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace acute::passive {
namespace {

using namespace acute::sim::literals;
using net::Packet;
using sim::Duration;
using sim::TimePoint;
using tools::ToolKind;

constexpr net::NodeId kPhone = 1;
constexpr net::NodeId kServer = 4;
constexpr std::uint32_t kFlow = 7;

TimePoint at(std::int64_t ms) {
  return TimePoint::epoch() + Duration::millis(ms);
}

Packet tcp_out(std::uint32_t tsval, std::uint32_t flow = kFlow) {
  Packet packet = Packet::make(net::PacketType::tcp_syn, net::Protocol::tcp,
                               kPhone, kServer, 60);
  packet.flow_id = flow;
  packet.tcp_ts.tsval = tsval;
  return packet;
}

Packet tcp_in(std::uint32_t tsecr, std::uint32_t flow = kFlow) {
  Packet packet = Packet::make(net::PacketType::tcp_syn, net::Protocol::tcp,
                               kServer, kPhone, 60);
  packet.flow_id = flow;
  packet.tcp_ts.tsecr = tsecr;
  return packet;
}

// ------------------------------------------------------------ pping units

TEST(PpingEstimator, MatchesTsvalToFirstTsecrEcho) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, /*phone_index=*/2, ToolKind::httping);
  pping.on_capture(tcp_out(100), kPhone, 2, at(10), false);
  EXPECT_EQ(pping.outstanding(), 1u);
  pping.on_capture(tcp_in(100), 2, kPhone, at(15), false);
  ASSERT_EQ(pping.samples().size(), 1u);
  const RttSample& sample = pping.samples()[0];
  EXPECT_EQ(sample.rtt_ms, 5.0);
  EXPECT_EQ(sample.phone_index, 2u);
  EXPECT_EQ(sample.tool, ToolKind::httping);
  EXPECT_EQ(sample.ordinal, 0);
  EXPECT_EQ(sample.matched_at, at(15));
  EXPECT_EQ(pping.outstanding(), 0u);
  EXPECT_EQ(pping.min_rtt_ms(2), 5.0);
  EXPECT_EQ(pping.min_rtt_ms(0), -1.0);  // no samples for that phone
}

TEST(PpingEstimator, RetransmissionDoesNotRestartTheClock) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(42), kPhone, 2, at(0), false);
  // The same TSval captured again (link-layer retransmission): the original
  // capture time must win, or loss would *shrink* the estimate.
  pping.on_capture(tcp_out(42), kPhone, 2, at(6), false);
  EXPECT_EQ(pping.outstanding(), 1u);
  pping.on_capture(tcp_in(42), 2, kPhone, at(20), false);
  ASSERT_EQ(pping.samples().size(), 1u);
  EXPECT_EQ(pping.samples()[0].rtt_ms, 20.0);
}

TEST(PpingEstimator, DuplicateEchoMatchesOnce) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(42), kPhone, 2, at(0), false);
  pping.on_capture(tcp_in(42), 2, kPhone, at(8), false);
  pping.on_capture(tcp_in(42), 2, kPhone, at(9), false);  // duplicated echo
  ASSERT_EQ(pping.samples().size(), 1u);
  EXPECT_EQ(pping.samples()[0].rtt_ms, 8.0);
}

TEST(PpingEstimator, ReorderedEchoesEachMatchTheirOwnTsval) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(1), kPhone, 2, at(0), false);
  pping.on_capture(tcp_out(2), kPhone, 2, at(3), false);
  // Echoes arrive out of order: each still pairs with its own TSval.
  pping.on_capture(tcp_in(2), 2, kPhone, at(10), false);
  pping.on_capture(tcp_in(1), 2, kPhone, at(12), false);
  ASSERT_EQ(pping.samples().size(), 2u);
  EXPECT_EQ(pping.samples()[0].rtt_ms, 7.0);   // tsval 2: 10 - 3
  EXPECT_EQ(pping.samples()[1].rtt_ms, 12.0);  // tsval 1: 12 - 0
  EXPECT_EQ(pping.samples()[0].ordinal, 0);
  EXPECT_EQ(pping.samples()[1].ordinal, 1);
}

TEST(PpingEstimator, StaleEntriesAreEvictedUnmatched) {
  PpingEstimator::Config config;
  config.stale_after = 100_ms;
  PpingEstimator pping(config);
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(5), kPhone, 2, at(0), false);
  // The next send is far past the staleness horizon: entry 5 is evicted.
  pping.on_capture(tcp_out(6), kPhone, 2, at(500), false);
  EXPECT_EQ(pping.evicted(), 1u);
  EXPECT_EQ(pping.outstanding(), 1u);
  pping.on_capture(tcp_in(5), 2, kPhone, at(501), false);
  EXPECT_TRUE(pping.samples().empty());  // the evicted entry cannot match
}

TEST(PpingEstimator, PerFlowCapEvictsTheOldestEntry) {
  PpingEstimator::Config config;
  config.max_outstanding = 2;
  PpingEstimator pping(config);
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(1), kPhone, 2, at(0), false);
  pping.on_capture(tcp_out(2), kPhone, 2, at(1), false);
  pping.on_capture(tcp_out(3), kPhone, 2, at(2), false);  // evicts tsval 1
  EXPECT_EQ(pping.outstanding(), 2u);
  EXPECT_EQ(pping.evicted(), 1u);
  pping.on_capture(tcp_in(1), 2, kPhone, at(3), false);
  EXPECT_TRUE(pping.samples().empty());
  pping.on_capture(tcp_in(3), 2, kPhone, at(4), false);
  EXPECT_EQ(pping.samples().size(), 1u);
}

TEST(PpingEstimator, IgnoresCollidedNonTcpAndUnwatchedTraffic) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  pping.on_capture(tcp_out(9), kPhone, 2, at(0), true);  // collided
  EXPECT_EQ(pping.outstanding(), 0u);
  Packet udp = Packet::make(net::PacketType::udp_data, net::Protocol::udp,
                            kPhone, kServer, 60);
  udp.flow_id = kFlow;
  pping.on_capture(udp, kPhone, 2, at(1), false);  // not TCP
  EXPECT_EQ(pping.outstanding(), 0u);
  pping.on_capture(tcp_out(9, kFlow + 1), kPhone, 2, at(2), false);  // flow
  EXPECT_EQ(pping.outstanding(), 0u);
  Packet no_ts = tcp_out(0);  // TCP without the timestamp option
  pping.on_capture(no_ts, kPhone, 2, at(3), false);
  EXPECT_EQ(pping.outstanding(), 0u);
}

TEST(PpingEstimator, RewatchingAWatchedFlowIsAContractViolation) {
  PpingEstimator pping;
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
  EXPECT_THROW(pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping),
               sim::ContractViolation);
  pping.reset();  // reset retires the watch, so re-watching is fine again
  pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
}

// ---------------------------------------------------------- per-app units

Packet app_out(std::uint64_t probe_id) {
  Packet packet = Packet::make(net::PacketType::tcp_syn, net::Protocol::tcp,
                               kPhone, kServer, 60);
  packet.flow_id = kFlow;
  packet.probe_id = probe_id;
  return packet;
}

Packet app_in(std::uint64_t probe_id) {
  Packet packet = Packet::make(net::PacketType::tcp_syn, net::Protocol::tcp,
                               kServer, kPhone, 60);
  packet.flow_id = kFlow;
  packet.probe_id = probe_id;
  return packet;
}

TEST(PerAppMonitor, PairsSendsWithDeliveriesByProbeId) {
  PerAppMonitor monitor;
  monitor.watch_flow(kPhone, kFlow, 1, ToolKind::java_ping);
  monitor.on_app_send(app_out(11), at(0));
  monitor.on_app_send(app_out(12), at(5));
  EXPECT_EQ(monitor.outstanding(), 2u);
  // Deliveries pair by probe id, not arrival order.
  monitor.on_app_deliver(app_in(12), at(20));
  monitor.on_app_deliver(app_in(11), at(30));
  ASSERT_EQ(monitor.samples().size(), 2u);
  EXPECT_EQ(monitor.samples()[0].rtt_ms, 15.0);
  EXPECT_EQ(monitor.samples()[1].rtt_ms, 30.0);
  EXPECT_EQ(monitor.samples()[0].phone_index, 1u);
  EXPECT_EQ(monitor.samples()[0].tool, ToolKind::java_ping);
  EXPECT_EQ(monitor.outstanding(), 0u);
}

TEST(PerAppMonitor, MatchOnceAndFirstSeenWins) {
  PerAppMonitor monitor;
  monitor.watch_flow(kPhone, kFlow, 0, ToolKind::java_ping);
  monitor.on_app_send(app_out(5), at(0));
  monitor.on_app_send(app_out(5), at(3));  // app-level resend: ignored
  monitor.on_app_deliver(app_in(5), at(10));
  monitor.on_app_deliver(app_in(5), at(11));  // duplicate delivery
  ASSERT_EQ(monitor.samples().size(), 1u);
  EXPECT_EQ(monitor.samples()[0].rtt_ms, 10.0);
}

TEST(PerAppMonitor, IgnoresBackgroundAndUnwatchedTraffic) {
  PerAppMonitor monitor;
  monitor.watch_flow(kPhone, kFlow, 0, ToolKind::java_ping);
  monitor.on_app_send(app_out(0), at(0));  // probe_id 0 = background
  EXPECT_EQ(monitor.outstanding(), 0u);
  Packet other = app_out(9);
  other.flow_id = kFlow + 1;
  monitor.on_app_send(other, at(1));
  EXPECT_EQ(monitor.outstanding(), 0u);
}

// ------------------------------------------------- Fig. 2 exactness (dn)

TEST(PassiveFig2, SnifferEstimatorEqualsAirStampDnExactly) {
  // Noiseless sniffer: its capture time IS the frame's TX start, the same
  // instant the air stamps record — so the passive estimate must equal the
  // stamp-derived dn bit for bit, probe by probe.
  testbed::TestbedConfig config;
  config.emulated_rtt = 20_ms;
  config.sniffer_noise = Duration{};
  testbed::Testbed testbed(config);
  testbed.settle(500_ms);

  PpingEstimator pping;
  testbed.sniffer(0).attach_capture_observer(&pping);

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = 15;
  tool_config.interval = 100_ms;
  tool_config.timeout = 2_s;
  tool_config.target = testbed::Testbed::kServerId;
  tools::JavaPing ping(testbed.phone(), tool_config);
  pping.watch_flow(testbed::Testbed::kPhoneId, ping.flow_id(), 0,
                   ToolKind::java_ping);
  ping.start();
  testbed.run_until_finished(ping);

  const auto& probes = ping.result().probes;
  ASSERT_EQ(probes.size(), 15u);
  ASSERT_EQ(pping.samples().size(), 15u);  // one TCP exchange per probe
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_FALSE(probes[i].timed_out);
    ASSERT_TRUE(probes[i].response.has_value());
    const net::Packet& response = *probes[i].response;
    ASSERT_TRUE(response.stamps.air.has_value());
    ASSERT_TRUE(response.request_stamps != nullptr &&
                response.request_stamps->air.has_value());
    const double dn_ms =
        (*response.stamps.air - *response.request_stamps->air).to_ms();
    EXPECT_EQ(pping.samples()[i].rtt_ms, dn_ms) << "probe " << i;
  }
  EXPECT_EQ(pping.outstanding(), 0u);
  EXPECT_EQ(pping.evicted(), 0u);
}

TEST(PassiveFig2, PerAppMonitorEqualsAppBoundaryStampsExactly) {
  testbed::TestbedConfig config;
  config.emulated_rtt = 20_ms;
  testbed::Testbed testbed(config);
  testbed.settle(500_ms);

  PerAppMonitor monitor;
  testbed.phone().exec_env().attach_flow_tap(&monitor);

  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = 12;
  tool_config.interval = 100_ms;
  tool_config.timeout = 2_s;
  tool_config.target = testbed::Testbed::kServerId;
  tools::JavaPing ping(testbed.phone(), tool_config);
  monitor.watch_flow(testbed::Testbed::kPhoneId, ping.flow_id(), 0,
                     ToolKind::java_ping);
  ping.start();
  testbed.run_until_finished(ping);

  const auto& probes = ping.result().probes;
  ASSERT_EQ(probes.size(), 12u);
  ASSERT_EQ(monitor.samples().size(), 12u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    ASSERT_TRUE(probes[i].response.has_value());
    const net::Packet& response = *probes[i].response;
    ASSERT_TRUE(response.stamps.app_recv.has_value());
    ASSERT_TRUE(response.request_stamps != nullptr &&
                response.request_stamps->app_send.has_value());
    const double du_ms = (*response.stamps.app_recv -
                          *response.request_stamps->app_send)
                             .to_ms();
    EXPECT_EQ(monitor.samples()[i].rtt_ms, du_ms) << "probe " << i;
  }
}

TEST(PassiveFig2, HttpingEmitsOneSamplePerTcpExchange) {
  // httping reuses one connection: the handshake SYN plus each HTTP request
  // is a TSval-carrying exchange, so N probes yield N+1 passive samples —
  // the estimator sees flow traffic, not the tool's probe abstraction.
  testbed::TestbedConfig config;
  config.emulated_rtt = 20_ms;
  config.sniffer_noise = Duration{};
  testbed::Testbed testbed(config);
  testbed.settle(500_ms);
  PpingEstimator pping;
  testbed.sniffer(0).attach_capture_observer(&pping);
  tools::MeasurementTool::Config tool_config;
  tool_config.probe_count = 10;
  tool_config.interval = 100_ms;
  tool_config.timeout = 2_s;
  tool_config.target = testbed::Testbed::kServerId;
  tools::HttPing httping(testbed.phone(), tool_config);
  pping.watch_flow(testbed::Testbed::kPhoneId, httping.flow_id(), 0,
                   ToolKind::httping);
  httping.start();
  testbed.run_until_finished(httping);
  EXPECT_EQ(pping.samples().size(), 11u);
  for (const RttSample& sample : pping.samples()) {
    EXPECT_GT(sample.rtt_ms, 0.0);
  }
}

// ------------------------------------- zero allocations, zero Packet copies

TEST(PassiveAllocation, ObservePathsAllocateNothingInSteadyState) {
  PpingEstimator pping;
  PerAppMonitor monitor;
  const auto replay = [&](int rounds) {
    pping.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
    monitor.watch_flow(kPhone, kFlow, 0, ToolKind::httping);
    for (int i = 1; i <= rounds; ++i) {
      const auto tsval = static_cast<std::uint32_t>(i);
      pping.on_capture(tcp_out(tsval), kPhone, 2, at(2 * i), false);
      pping.on_capture(tcp_in(tsval), 2, kPhone, at(2 * i + 1), false);
      monitor.on_app_send(app_out(static_cast<std::uint64_t>(i)), at(2 * i));
      monitor.on_app_deliver(app_in(static_cast<std::uint64_t>(i)),
                             at(2 * i + 1));
    }
  };
  // Warm-up round: tables and sample vectors grow to their working size.
  replay(64);
  pping.reset();
  monitor.reset();
  // Steady state (the shard-context reuse shape: reset + rewatch + replay):
  // the observe path and the reset/rewatch cycle must not allocate at all.
  const std::size_t before = g_heap_allocations;
  net::Packet::reset_op_counters();
  replay(64);
  EXPECT_EQ(g_heap_allocations - before, 0u);
  EXPECT_EQ(net::Packet::op_counters().copies, 0u);
  EXPECT_EQ(pping.samples().size(), 64u);
  EXPECT_EQ(monitor.samples().size(), 64u);
}

TEST(PassiveAllocation, SnifferForwardingAddsNoPacketCopies) {
  // The estimator observes net::Packet strictly by reference: an attached
  // observer must not change the per-thread Packet copy count of a full
  // tool run compared with no observer at all.
  const auto copies_of_run = [](bool attach) {
    testbed::TestbedConfig config;
    config.emulated_rtt = 10_ms;
    config.sniffer_noise = Duration{};
    testbed::Testbed testbed(config);
    testbed.settle(500_ms);
    PpingEstimator pping;
    if (attach) testbed.sniffer(0).attach_capture_observer(&pping);
    tools::MeasurementTool::Config tool_config;
    tool_config.probe_count = 8;
    tool_config.interval = 50_ms;
    tool_config.timeout = 2_s;
    tool_config.target = testbed::Testbed::kServerId;
    tools::JavaPing ping(testbed.phone(), tool_config);
    if (attach) {
      pping.watch_flow(testbed::Testbed::kPhoneId, ping.flow_id(), 0,
                       ToolKind::java_ping);
    }
    net::Packet::reset_op_counters();
    ping.start();
    testbed.run_until_finished(ping);
    if (attach) EXPECT_EQ(pping.samples().size(), 8u);
    return net::Packet::op_counters().copies;
  };
  EXPECT_EQ(copies_of_run(true), copies_of_run(false));
}

}  // namespace
}  // namespace acute::passive
