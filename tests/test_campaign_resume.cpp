// Campaign checkpoint/resume: a sweep killed after K of N shards and
// resumed from its checkpoint must produce bit-identical merged workload
// digests to an uninterrupted run — for any worker count (the ISSUE's
// acceptance criterion, exercised at 1 and 8 workers).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report/checkpoint.hpp"

#include "report/sink.hpp"
#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using tools::ToolKind;

struct TempFile {
  explicit TempFile(const std::string& name)
      : path("resume_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

/// 8 shards across profiles / workloads / loss — enough variety that a
/// digest mismatch anywhere shows up in the merge.
CampaignSpec resume_campaign() {
  ScenarioGrid grid;
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {12_ms};
  grid.loss_rates = {0.0, 0.2};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  CampaignSpec spec;
  spec.seed = 77;
  spec.scenarios = grid.expand();
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 1_s;
  spec.keep_samples = false;
  return spec;
}

void expect_digests_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  const auto da = a.workload_digests();
  const auto db = b.workload_digests();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].tool, db[i].tool);
    EXPECT_EQ(da[i].probes, db[i].probes);
    EXPECT_EQ(da[i].lost, db[i].lost);
    EXPECT_EQ(da[i].reported_rtt_ms.count(), db[i].reported_rtt_ms.count());
    EXPECT_EQ(da[i].reported_rtt_ms.mean(), db[i].reported_rtt_ms.mean());
    EXPECT_EQ(da[i].reported_rtt_ms.min(), db[i].reported_rtt_ms.min());
    EXPECT_EQ(da[i].reported_rtt_ms.max(), db[i].reported_rtt_ms.max());
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      EXPECT_EQ(da[i].reported_rtt_ms.quantile(q),
                db[i].reported_rtt_ms.quantile(q))
          << "tool " << static_cast<int>(da[i].tool) << " q=" << q;
      EXPECT_EQ(da[i].du_ms.quantile(q), db[i].du_ms.quantile(q));
      EXPECT_EQ(da[i].dn_ms.quantile(q), db[i].dn_ms.quantile(q));
    }
  }
  EXPECT_EQ(a.rtt_digest().quantile(0.5), b.rtt_digest().quantile(0.5));
  EXPECT_EQ(a.total_probes(), b.total_probes());
  EXPECT_EQ(a.total_lost(), b.total_lost());
  EXPECT_EQ(a.total_frames(), b.total_frames());
  EXPECT_EQ(a.total_events(), b.total_events());
}

void kill_and_resume(std::size_t kill_workers, std::size_t resume_workers) {
  // Ground truth: the same campaign uninterrupted, no checkpoint.
  const CampaignReport uninterrupted = Campaign(resume_campaign()).run(1);

  TempFile checkpoint("kill_" + std::to_string(kill_workers) + "_" +
                      std::to_string(resume_workers));
  // "Kill" after 3 of 8 shards: max_shards caps the invocation.
  CampaignSpec killed = resume_campaign();
  killed.checkpoint_path = checkpoint.path;
  killed.max_shards = 3;
  const CampaignReport partial = Campaign(killed).run(kill_workers);
  EXPECT_EQ(partial.completed_shards(), 3u);
  EXPECT_LT(partial.total_probes(), uninterrupted.total_probes());

  // Resume: same spec, no cap. Only the 5 pending shards execute.
  CampaignSpec resumed_spec = resume_campaign();
  resumed_spec.checkpoint_path = checkpoint.path;
  std::size_t executed = 0;
  resumed_spec.sinks = [&executed](const report::ShardInfo&) {
    ++executed;  // single-threaded counting is only safe with 1 worker
    return std::vector<std::unique_ptr<report::ResultSink>>{};
  };
  if (resume_workers > 1) resumed_spec.sinks = nullptr;
  const CampaignReport resumed = Campaign(resumed_spec).run(resume_workers);
  if (resume_workers == 1) EXPECT_EQ(executed, 5u);
  EXPECT_EQ(resumed.completed_shards(), resumed.shards.size());

  expect_digests_bit_identical(resumed, uninterrupted);
}

TEST(CampaignResume, KilledSweepResumesBitIdenticallySerial) {
  kill_and_resume(1, 1);
}

TEST(CampaignResume, KilledSweepResumesBitIdenticallyThreaded) {
  kill_and_resume(8, 8);
}

TEST(CampaignResume, FullyCheckpointedRerunExecutesNothing) {
  TempFile checkpoint("norerun");
  CampaignSpec spec = resume_campaign();
  spec.checkpoint_path = checkpoint.path;
  const CampaignReport first = Campaign(spec).run(2);
  EXPECT_EQ(first.completed_shards(), first.shards.size());

  std::size_t executed = 0;
  CampaignSpec again = resume_campaign();
  again.checkpoint_path = checkpoint.path;
  again.sinks = [&executed](const report::ShardInfo&) {
    ++executed;
    return std::vector<std::unique_ptr<report::ResultSink>>{};
  };
  const CampaignReport second = Campaign(again).run(1);
  EXPECT_EQ(executed, 0u);  // every shard restored, none re-executed
  expect_digests_bit_identical(first, second);
}

TEST(CampaignResume, IncrementalInvocationsWalkTheCampaign) {
  // The ops pattern behind max_shards: N small checkpointed invocations
  // eventually complete the sweep, idempotently.
  TempFile checkpoint("incremental");
  const CampaignReport uninterrupted = Campaign(resume_campaign()).run(1);
  for (int tick = 0; tick < 5; ++tick) {
    CampaignSpec spec = resume_campaign();
    spec.checkpoint_path = checkpoint.path;
    spec.max_shards = 2;
    const CampaignReport report = Campaign(spec).run(2);
    const std::size_t expect_done =
        std::min<std::size_t>(2 * (tick + 1), report.shards.size());
    EXPECT_EQ(report.completed_shards(), expect_done);
    if (report.completed_shards() == report.shards.size()) {
      expect_digests_bit_identical(report, uninterrupted);
      return;
    }
  }
  FAIL() << "campaign never completed";
}

TEST(CampaignResume, MismatchedCheckpointIsAContractViolation) {
  TempFile checkpoint("mismatch");
  CampaignSpec spec = resume_campaign();
  spec.checkpoint_path = checkpoint.path;
  spec.max_shards = 2;
  (void)Campaign(spec).run(1);

  CampaignSpec other = resume_campaign();
  other.seed = spec.seed + 1;  // different campaign, same checkpoint file
  other.checkpoint_path = checkpoint.path;
  EXPECT_THROW((void)Campaign(other).run(1), sim::ContractViolation);
}

TEST(CampaignResume, EditedSpecIsAContractViolation) {
  // Same seed, same scenario count — but the probe schedule changed since
  // the kill. The per-record spec fingerprint must reject the stale shards
  // instead of silently merging 6-probe digests into an 18-probe campaign.
  TempFile checkpoint("edited_spec");
  CampaignSpec spec = resume_campaign();
  spec.checkpoint_path = checkpoint.path;
  spec.max_shards = 2;
  (void)Campaign(spec).run(1);

  CampaignSpec edited = resume_campaign();
  edited.checkpoint_path = checkpoint.path;
  edited.probes_per_phone = spec.probes_per_phone * 3;
  EXPECT_THROW((void)Campaign(edited).run(1), sim::ContractViolation);

  CampaignSpec reshaped = resume_campaign();
  reshaped.checkpoint_path = checkpoint.path;
  reshaped.scenarios[0].phones.push_back(PhoneSpec{});  // different shape
  EXPECT_THROW((void)Campaign(reshaped).run(1), sim::ContractViolation);
}

TEST(CampaignResume, TornCheckpointLineRerunsOnlyThatShard) {
  // A real kill can tear the checkpoint's last line mid-write. The torn
  // shard must simply rerun — and the resumed merge must still be
  // bit-identical to an uninterrupted run.
  TempFile checkpoint("torn");
  CampaignSpec spec = resume_campaign();
  spec.checkpoint_path = checkpoint.path;
  spec.max_shards = 3;
  (void)Campaign(spec).run(1);
  std::string contents;
  {
    std::ifstream in(checkpoint.path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
  }
  {
    std::ofstream out(checkpoint.path, std::ios::trunc);
    out << contents.substr(0, contents.size() - 25);  // tear record 2
  }
  ASSERT_EQ(report::load_checkpoint(checkpoint.path).size(), 2u);

  CampaignSpec resumed_spec = resume_campaign();
  resumed_spec.checkpoint_path = checkpoint.path;
  const CampaignReport resumed = Campaign(resumed_spec).run(1);
  EXPECT_EQ(resumed.completed_shards(), resumed.shards.size());
  expect_digests_bit_identical(resumed, Campaign(resume_campaign()).run(1));
  // The rerun shard re-recorded itself: the healed file now restores all
  // shards (resume's compaction pass dropped the torn fragment entirely).
  EXPECT_EQ(report::load_checkpoint(checkpoint.path).size(),
            resumed.shards.size());
}

std::size_t raw_line_count(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  return lines;
}

TEST(CampaignResume, ResumeCompactsTheCheckpointToOneLinePerShard) {
  // A many-times-killed sweep accretes torn fragments (and, with unlucky
  // kills, duplicate records) in its checkpoint. Resume must rewrite the
  // file to one line per completed shard — and keep resuming bit-
  // identically afterwards (resume -> compact -> resume round trip).
  TempFile checkpoint("compact");
  const CampaignReport uninterrupted = Campaign(resume_campaign()).run(1);

  CampaignSpec tick = resume_campaign();
  tick.checkpoint_path = checkpoint.path;
  tick.max_shards = 3;
  (void)Campaign(tick).run(1);

  // Simulate kill debris: a duplicated record and a torn trailing line.
  {
    const auto records = report::load_checkpoint(checkpoint.path);
    ASSERT_EQ(records.size(), 3u);
    std::ofstream out(checkpoint.path, std::ios::app);
    out << report::render_checkpoint_record(records[1]);
    out << "ckpt1 2 99 torn-mid-writ";
  }
  ASSERT_EQ(raw_line_count(checkpoint.path), 5u);

  // Second tick: load compacts (3 unique records survive) before the next
  // 3 shards append.
  (void)Campaign(tick).run(2);
  EXPECT_EQ(raw_line_count(checkpoint.path), 6u);
  EXPECT_EQ(report::load_checkpoint(checkpoint.path).size(), 6u);

  // Final resume completes the sweep; every merged digest bit-identical to
  // the uninterrupted run, and the file is again one line per shard.
  CampaignSpec rest = resume_campaign();
  rest.checkpoint_path = checkpoint.path;
  const CampaignReport resumed = Campaign(rest).run(2);
  EXPECT_EQ(resumed.completed_shards(), resumed.shards.size());
  expect_digests_bit_identical(resumed, uninterrupted);

  // One more resume: nothing pending, the load compacts the finished file
  // to exactly shards.size() lines and restores everything bit-identically.
  const CampaignReport rerun = Campaign(rest).run(1);
  EXPECT_EQ(raw_line_count(checkpoint.path), rerun.shards.size());
  expect_digests_bit_identical(rerun, uninterrupted);
}

TEST(CampaignResume, RestoredShardsCarryCountersButNoSamples) {
  TempFile checkpoint("restored_view");
  CampaignSpec spec = resume_campaign();
  spec.keep_samples = true;
  spec.checkpoint_path = checkpoint.path;
  const CampaignReport first = Campaign(spec).run(1);
  const CampaignReport second = Campaign(spec).run(1);
  for (std::size_t i = 0; i < second.shards.size(); ++i) {
    const ShardResult& restored = second.shards[i];
    EXPECT_TRUE(restored.completed);
    EXPECT_EQ(restored.shard_seed, first.shards[i].shard_seed);
    EXPECT_EQ(restored.probes_sent, first.shards[i].probes_sent);
    EXPECT_EQ(restored.events_fired, first.shards[i].events_fired);
    EXPECT_EQ(restored.sim_seconds, first.shards[i].sim_seconds);
    // Raw vectors are not checkpointed: the restored view is digests-only.
    EXPECT_TRUE(restored.reported_rtt_ms.empty());
    EXPECT_TRUE(restored.du_ms.empty());
  }
  expect_digests_bit_identical(first, second);
}

}  // namespace
}  // namespace acute::testbed
