// The allocation-free event core, pinned by a counting global allocator:
// steady-state schedule_at/schedule_in/cancel/fire must perform ZERO heap
// allocations per event — closures live in EventClosure's inline buffer
// inside the pooled slots, cancel state is {slot, generation} (no
// shared_ptr), and oversized closures recycle through the per-queue
// ClosureArena. These tests replace operator new for the whole binary and
// diff the counter across a measured steady-state window.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "net/packet.hpp"
#include "sim/closure.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "wifi/channel.hpp"

namespace {
// Plain (non-atomic) counter: the tests are single-threaded.
std::size_t g_heap_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_heap_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_heap_allocations;
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  void* p = std::aligned_alloc(al, rounded == 0 ? al : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// Nothrow variants too: libstdc++ internals (stable_sort's temporary
// buffer) allocate with new(nothrow) but free through plain delete — an
// incomplete replacement pairs the runtime's allocator with our free,
// which ASan rejects as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace acute::sim {
namespace {

using namespace acute::sim::literals;

// The inline buffer must cover the fattest closures the stack layers
// schedule: a lambda owning a whole wifi::Frame (which embeds a
// net::Packet) plus a couple of pointers. Compile-time, so a Packet growth
// that would silently push scheduling onto the arena fails here first.
static_assert(EventClosure::kInlineBytes >=
                  sizeof(wifi::Frame) + 2 * sizeof(void*),
              "EventClosure inline buffer no longer covers a Frame capture");
static_assert(EventClosure::kInlineBytes >=
                  sizeof(net::Packet) + 2 * sizeof(void*),
              "EventClosure inline buffer no longer covers a Packet capture");

TEST(EventClosure, PacketAndFrameCapturesAreStoredInline) {
  net::Packet packet;
  wifi::Frame frame;
  auto packet_fn = [pkt = std::move(packet)]() mutable { (void)pkt; };
  auto frame_fn = [f = std::move(frame), extra = static_cast<void*>(nullptr)]()
      mutable { (void)f; (void)extra; };
  static_assert(EventClosure::fits_inline<decltype(packet_fn)>);
  static_assert(EventClosure::fits_inline<decltype(frame_fn)>);
  EventClosure closure(std::move(frame_fn));
  EXPECT_TRUE(closure.stored_inline());
}

// A probe-like event: carries a Packet-sized payload, re-arms a timeout
// (push + cancel, the campaign's dominant pattern) and reschedules itself.
struct ProbeChain {
  Simulator* sim;
  int* remaining;
  EventHandle* timeout;
  std::array<unsigned char, sizeof(net::Packet)> payload{};

  void operator()() {
    if (--*remaining <= 0) return;
    timeout->cancel();
    *timeout = sim->schedule_in(8_s, [] {});
    sim->schedule_in(10_us,
                     ProbeChain{sim, remaining, timeout, payload});
  }
};
static_assert(EventClosure::fits_inline<ProbeChain>);

TEST(EventCoreAllocation, SteadyStateSchedulingIsAllocationFree) {
  Simulator sim;
  int remaining = 4000;
  EventHandle timeout;
  sim.schedule_in(10_us, ProbeChain{&sim, &remaining, &timeout, {}});

  // Warm-up: grows the slot pool, the heap vector, the free list and the
  // compaction high-water marks to their steady-state footprint.
  while (remaining > 2000 && sim.step()) {
  }
  ASSERT_GT(remaining, 0);

  const std::size_t allocations_before = g_heap_allocations;
  const std::uint64_t events_before = sim.events_fired();
  while (remaining > 0 && sim.step()) {
  }
  EXPECT_EQ(g_heap_allocations, allocations_before)
      << "steady-state schedule/cancel/fire touched the heap";
  EXPECT_GE(sim.events_fired() - events_before, 2000u);

  // Drain the surviving timeouts; still allocation-free.
  const std::size_t allocations_mid = g_heap_allocations;
  (void)sim.run();
  EXPECT_EQ(g_heap_allocations, allocations_mid);
}

// A deliberately oversized capture: must overflow the inline buffer and
// recycle through the per-queue ClosureArena instead of the global heap.
struct OversizedChain {
  Simulator* sim;
  int* remaining;
  std::array<unsigned char, EventClosure::kInlineBytes + 128> blob{};

  void operator()() {
    if (--*remaining <= 0) return;
    sim->schedule_in(10_us, OversizedChain{sim, remaining, blob});
  }
};
static_assert(!EventClosure::fits_inline<OversizedChain>);

TEST(EventCoreAllocation, OversizedClosuresRecycleThroughArena) {
  Simulator sim;
  int remaining = 2000;
  sim.schedule_in(10_us, OversizedChain{&sim, &remaining, {}});
  while (remaining > 1000 && sim.step()) {
  }
  ASSERT_GT(remaining, 0);

  const std::size_t allocations_before = g_heap_allocations;
  const std::uint64_t fresh_before = sim.queue().arena().fresh_blocks();
  const std::uint64_t recycled_before = sim.queue().arena().recycled_blocks();
  (void)sim.run();
  EXPECT_EQ(g_heap_allocations, allocations_before)
      << "oversized closures must recycle via the arena, not operator new";
  EXPECT_EQ(sim.queue().arena().fresh_blocks(), fresh_before);
  EXPECT_GT(sim.queue().arena().recycled_blocks(), recycled_before);
}

TEST(EventCoreAllocation, CancelIsAllocationFree) {
  Simulator sim;
  std::array<EventHandle, 64> handles;
  for (int round = 0; round < 4; ++round) {
    for (EventHandle& handle : handles) {
      handle = sim.schedule_in(1_ms, [] {});
    }
    for (EventHandle& handle : handles) handle.cancel();
    (void)sim.run_for(2_ms);
  }
  // Pool, heap and free list are warm: one more full round must be clean.
  const std::size_t allocations_before = g_heap_allocations;
  for (EventHandle& handle : handles) {
    handle = sim.schedule_in(1_ms, [] {});
  }
  for (EventHandle& handle : handles) handle.cancel();
  (void)sim.run_for(2_ms);
  EXPECT_EQ(g_heap_allocations, allocations_before);
}

}  // namespace
}  // namespace acute::sim
