// Overflow safety of the id allocators: packet ids and per-phone flow ids
// use 0 as a sentinel, so wrap-around must skip it (fleet-scale scenarios
// multiply packet volume enough to make this a real invariant).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "net/id_alloc.hpp"
#include "net/packet.hpp"
#include "phone/profile.hpp"
#include "phone/runtime.hpp"
#include "sim/simulator.hpp"

namespace acute::net {
namespace {

TEST(IdAllocator, CountsUpFromOne) {
  IdAllocator<std::uint32_t> alloc;
  EXPECT_EQ(alloc.next(), 1u);
  EXPECT_EQ(alloc.next(), 2u);
  EXPECT_EQ(alloc.peek(), 3u);
}

TEST(IdAllocator, WrapSkipsTheZeroSentinel) {
  IdAllocator<std::uint32_t> alloc(std::numeric_limits<std::uint32_t>::max() -
                                   1);
  EXPECT_EQ(alloc.next(), std::numeric_limits<std::uint32_t>::max() - 1);
  EXPECT_EQ(alloc.next(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(alloc.next(), 1u);  // not 0
  EXPECT_EQ(alloc.next(), 2u);
}

TEST(IdAllocator, FullCycleNeverYieldsZero) {
  IdAllocator<std::uint8_t> alloc;
  for (int i = 0; i < 3 * 255; ++i) {
    EXPECT_NE(alloc.next(), 0u);
  }
}

TEST(IdAllocator, ZeroStartIsCoercedToOne) {
  IdAllocator<std::uint8_t> alloc(0);
  EXPECT_EQ(alloc.next(), 1u);
}

TEST(AtomicIdAllocator, WrapSkipsTheZeroSentinel) {
  AtomicIdAllocator<std::uint8_t> alloc(254);
  EXPECT_EQ(alloc.next(), 254u);
  EXPECT_EQ(alloc.next(), 255u);
  EXPECT_EQ(alloc.next(), 1u);  // the wrapped 0 is skipped
}

TEST(AtomicIdAllocator, PacketIdsAreNonZeroAndUnique) {
  const std::uint64_t a = Packet::allocate_id();
  const std::uint64_t b = Packet::allocate_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(FlowIdAllocation, SkipsIdsStillRegistered) {
  sim::Simulator sim;
  const phone::PhoneProfile profile = phone::PhoneProfile::nexus5();
  phone::ExecEnvLayer exec(sim, sim::Rng(1), profile);
  // Occupy the id the allocator would hand out second.
  exec.register_flow(2, [](const Packet&) {});
  EXPECT_EQ(exec.allocate_flow_id(), 1u);
  EXPECT_EQ(exec.allocate_flow_id(), 3u);  // 2 is in use
  exec.unregister_flow(2);
  EXPECT_EQ(exec.allocate_flow_id(), 4u);
}

}  // namespace
}  // namespace acute::net
