// The merge frontier (CampaignSpec::retain_shards=false): campaign-level
// folding must be bit-identical to the legacy buffered merge for any worker
// count and across kill/resume — including a non-contiguous restored set —
// while actually releasing each shard's digest memory as it folds. The
// memory claim is pinned by a live-byte-counting global allocator (this
// binary replaces operator new, which is safe because every test file
// links into its own binary): the frontier's peak live heap must stay far
// below the buffered model's O(shards) digest retention.
#include <gtest/gtest.h>

#include <malloc.h>

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "report/jsonl_sink.hpp"
#include "sim/contracts.hpp"
#include "testbed/campaign.hpp"

namespace {
// Atomic live/peak byte tracking: campaign workers allocate concurrently.
// malloc_usable_size gives the true block size for both malloc and
// aligned_alloc on glibc, so frees can be accounted without a size map.
std::atomic<std::size_t> g_live_bytes{0};
std::atomic<std::size_t> g_peak_bytes{0};

void track_alloc(void* p) {
  const std::size_t live =
      g_live_bytes.fetch_add(malloc_usable_size(p),
                             std::memory_order_relaxed) +
      malloc_usable_size(p);
  std::size_t peak = g_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_bytes.compare_exchange_weak(peak, live,
                                             std::memory_order_relaxed)) {
  }
}

void track_free(void* p) {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

/// Resets the peak watermark to the current live total and returns the
/// previous peak (call before a measured region).
void reset_peak() {
  g_peak_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  track_alloc(p);
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  const std::size_t al = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + al - 1) / al * al;
  void* p = std::aligned_alloc(al, rounded == 0 ? al : rounded);
  if (p == nullptr) throw std::bad_alloc();
  track_alloc(p);
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// Nothrow variants too: libstdc++ internals (stable_sort's temporary
// buffer) allocate with new(nothrow) but free through plain delete — an
// incomplete replacement pairs the runtime's allocator with our free,
// which ASan rejects as an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p != nullptr) track_alloc(p);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete(void* p) noexcept { track_free(p); std::free(p); }
void operator delete(void* p, std::size_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept { track_free(p); std::free(p); }
void operator delete[](void* p, std::size_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  track_free(p);
  std::free(p);
}

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using phone::PhoneProfile;
using tools::ToolKind;

struct TempFile {
  explicit TempFile(const std::string& name) : path("frontier_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The bench/test scaling shape: `shards` minimal one-phone one-probe
/// scenarios on a lazy rtt x loss x reorder grid (same axes as the
/// 10^4-shard determinism pin in test_campaign_lazy).
CampaignSpec scaled_spec(std::size_t shards, bool retain_shards) {
  ScenarioGrid grid;
  grid.emulated_rtts.clear();
  for (int i = 0; i < 50; ++i) {
    grid.emulated_rtts.push_back(sim::Duration::millis(2 + i));
  }
  grid.reorder = {false, true};
  const std::size_t loss_steps = (shards + 99) / 100;
  grid.loss_rates.clear();
  for (std::size_t i = 0; i < loss_steps; ++i) {
    grid.loss_rates.push_back(double(i) * (0.3 / double(loss_steps)));
  }
  CampaignSpec spec;
  spec.seed = 2016;
  spec.grid = grid;
  spec.probes_per_phone = 1;
  spec.probe_interval = 50_ms;
  spec.probe_timeout = 400_ms;
  spec.settle = 50_ms;
  spec.keep_samples = false;
  spec.retain_shards = retain_shards;
  return spec;
}

/// A small mixed grid cheap enough for resume/JSONL matrices (8 shards).
CampaignSpec small_spec(bool retain_shards) {
  ScenarioGrid grid;
  grid.profiles = {PhoneProfile::nexus5(), PhoneProfile::nexus4()};
  grid.emulated_rtts = {12_ms};
  grid.loss_rates = {0.0, 0.2};
  grid.workloads = {WorkloadSpec{ToolKind::icmp_ping},
                    WorkloadSpec{ToolKind::httping}};
  CampaignSpec spec;
  spec.seed = 77;
  spec.grid = grid;
  spec.probes_per_phone = 6;
  spec.probe_interval = 150_ms;
  spec.probe_timeout = 1_s;
  spec.keep_samples = false;
  spec.retain_shards = retain_shards;
  return spec;
}

/// Bitwise comparison of the merged-report surface: digest quantiles are
/// EXPECT_EQ (not NEAR) on purpose — the frontier fold must reproduce the
/// buffered merge to the last bit.
void expect_reports_bit_identical(const CampaignReport& a,
                                  const CampaignReport& b) {
  const auto da = a.workload_digests();
  const auto db = b.workload_digests();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].tool, db[i].tool);
    EXPECT_EQ(da[i].probes, db[i].probes);
    EXPECT_EQ(da[i].lost, db[i].lost);
    EXPECT_EQ(da[i].reported_rtt_ms.count(), db[i].reported_rtt_ms.count());
    for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
      EXPECT_EQ(da[i].reported_rtt_ms.quantile(q),
                db[i].reported_rtt_ms.quantile(q));
      EXPECT_EQ(da[i].du_ms.quantile(q), db[i].du_ms.quantile(q));
      EXPECT_EQ(da[i].dk_ms.quantile(q), db[i].dk_ms.quantile(q));
      EXPECT_EQ(da[i].dv_ms.quantile(q), db[i].dv_ms.quantile(q));
      EXPECT_EQ(da[i].dn_ms.quantile(q), db[i].dn_ms.quantile(q));
    }
  }
  EXPECT_EQ(a.total_probes(), b.total_probes());
  EXPECT_EQ(a.total_lost(), b.total_lost());
  EXPECT_EQ(a.total_frames(), b.total_frames());
  EXPECT_EQ(a.total_events(), b.total_events());
  EXPECT_EQ(a.total_sim_seconds(), b.total_sim_seconds());
  EXPECT_EQ(a.completed_shards(), b.completed_shards());
  EXPECT_EQ(a.shard_count(), b.shard_count());
}

TEST(FrontierCampaign, RequiresStreamingDigestMode) {
  CampaignSpec spec = small_spec(/*retain_shards=*/false);
  spec.keep_samples = true;  // raw sample vectors cannot be folded away
  EXPECT_THROW(Campaign{spec}, sim::ContractViolation);
}

TEST(FrontierCampaign, FoldMatchesBufferedMergeOnSmallGrid) {
  const CampaignReport buffered =
      Campaign(small_spec(/*retain_shards=*/true)).run(2);
  const CampaignReport folded =
      Campaign(small_spec(/*retain_shards=*/false)).run(2);
  EXPECT_FALSE(buffered.shards.empty());
  EXPECT_TRUE(folded.shards.empty());  // consumed by the fold
  EXPECT_TRUE(folded.frontier.active);
  expect_reports_bit_identical(folded, buffered);
}

/// The tentpole acceptance pin: 10^4 shards, frontier fold vs buffered
/// merge, 1 AND 8 workers — all four bit-identical.
TEST(FrontierCampaign, TenThousandShardsBitIdenticalToBufferedMerge) {
  Campaign sizing(scaled_spec(10000, /*retain_shards=*/true));
  ASSERT_EQ(sizing.scenario_count(), 10000u);
  const CampaignReport buffered = sizing.run(1);
  EXPECT_GT(buffered.total_lost(), 0u);  // the loss axis actually bites
  const CampaignReport frontier_serial =
      Campaign(scaled_spec(10000, /*retain_shards=*/false)).run(1);
  expect_reports_bit_identical(frontier_serial, buffered);
  const CampaignReport frontier_pool =
      Campaign(scaled_spec(10000, /*retain_shards=*/false)).run(8);
  expect_reports_bit_identical(frontier_pool, buffered);
}

TEST(FrontierCampaign, KillResumeMidFrontierBitIdentical) {
  const CampaignReport uninterrupted =
      Campaign(small_spec(/*retain_shards=*/true)).run(1);

  // Kill after 3 shards, tick 2 more, then finish — every resume goes
  // through the streaming validate/compact/feed path.
  TempFile checkpoint("kill_resume");
  for (const std::size_t cap : {std::size_t{3}, std::size_t{2}}) {
    CampaignSpec tick = small_spec(/*retain_shards=*/false);
    tick.checkpoint_path = checkpoint.path;
    tick.max_shards = cap;
    (void)Campaign(tick).run(2);
  }
  CampaignSpec final_spec = small_spec(/*retain_shards=*/false);
  final_spec.checkpoint_path = checkpoint.path;
  const CampaignReport resumed = Campaign(final_spec).run(2);
  EXPECT_EQ(resumed.completed_shards(), resumed.shard_count());
  expect_reports_bit_identical(resumed, uninterrupted);
}

TEST(FrontierCampaign, ResumesNonContiguousRestoredSet) {
  const CampaignReport uninterrupted =
      Campaign(small_spec(/*retain_shards=*/true)).run(1);

  // Complete the whole campaign, then punch holes in the checkpoint
  // (drop every third record): the restored set interleaves with freshly
  // re-run shards, which is exactly the ordering the frontier's
  // restored/fresh slot walk must get right.
  TempFile checkpoint("holes");
  CampaignSpec full = small_spec(/*retain_shards=*/false);
  full.checkpoint_path = checkpoint.path;
  (void)Campaign(full).run(2);
  std::vector<std::string> kept;
  {
    std::ifstream in(checkpoint.path);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream tokens(line);
      std::string magic;
      std::size_t index = 0;
      tokens >> magic >> index;
      if (index % 3 != 1) kept.push_back(line);
    }
  }
  ASSERT_FALSE(kept.empty());
  {
    std::ofstream out(checkpoint.path, std::ios::trunc);
    for (const std::string& line : kept) out << line << '\n';
  }
  CampaignSpec resume = small_spec(/*retain_shards=*/false);
  resume.checkpoint_path = checkpoint.path;
  const CampaignReport resumed = Campaign(resume).run(2);
  EXPECT_EQ(resumed.completed_shards(), resumed.shard_count());
  expect_reports_bit_identical(resumed, uninterrupted);
}

TEST(FrontierCampaign, RejectsCheckpointFromDifferentCampaign) {
  TempFile checkpoint("seed_mismatch");
  CampaignSpec first = small_spec(/*retain_shards=*/false);
  first.checkpoint_path = checkpoint.path;
  first.max_shards = 2;
  (void)Campaign(first).run(1);

  CampaignSpec other = small_spec(/*retain_shards=*/false);
  other.seed = first.seed + 1;
  other.checkpoint_path = checkpoint.path;
  EXPECT_THROW((void)Campaign(other).run(1), sim::ContractViolation);
}

TEST(FrontierCampaign, JsonlExportByteIdenticalToBufferedMode) {
  // The frontier changes when shard *results* are folded, not when sink
  // events are delivered: the JSONL reorder window must produce the same
  // bytes in both retention modes and for any worker count.
  auto run_with = [](bool retain_shards, std::size_t workers,
                     const std::string& path) {
    CampaignSpec spec = small_spec(retain_shards);
    auto writer = std::make_shared<report::JsonlWriter>(path);
    spec.sinks = report::jsonl_sink_factory(writer);
    (void)Campaign(spec).run(workers);
  };
  TempFile buffered("jsonl_buffered");
  TempFile folded("jsonl_frontier");
  run_with(/*retain_shards=*/true, 1, buffered.path);
  run_with(/*retain_shards=*/false, 8, folded.path);
  const std::string buffered_bytes = read_file(buffered.path);
  ASSERT_FALSE(buffered_bytes.empty());
  EXPECT_EQ(buffered_bytes, read_file(folded.path));
}

TEST(FrontierCampaign, CompletedShardsReleaseDigestMemory) {
  // 2000 minimal shards hold ~20 KB of digests each when buffered
  // (~40 MB); the frontier frees each shard's digests as it folds, so its
  // peak live heap over the same campaign must stay a small fraction of
  // the buffered model's. Measured with the binary-wide counting
  // allocator, peak reset before each run.
  constexpr std::size_t kShards = 2000;
  reset_peak();
  const std::size_t before = g_live_bytes.load(std::memory_order_relaxed);
  {
    const CampaignReport buffered =
        Campaign(scaled_spec(kShards, /*retain_shards=*/true)).run(1);
    ASSERT_EQ(buffered.completed_shards(), kShards);
  }
  const std::size_t buffered_peak =
      g_peak_bytes.load(std::memory_order_relaxed) - before;

  reset_peak();
  const std::size_t before_frontier =
      g_live_bytes.load(std::memory_order_relaxed);
  {
    const CampaignReport folded =
        Campaign(scaled_spec(kShards, /*retain_shards=*/false)).run(1);
    ASSERT_EQ(folded.completed_shards(), kShards);
  }
  const std::size_t frontier_peak =
      g_peak_bytes.load(std::memory_order_relaxed) - before_frontier;

  // The buffered run must actually exhibit the O(shards) retention the
  // frontier removes (>= 4 KB/shard of digest state), and the frontier
  // must stay far below it — 1/4 is a loose bound; in practice it is
  // closer to 1/50 (O(workers) shards live at once instead of all 2000).
  EXPECT_GT(buffered_peak, kShards * 4096);
  EXPECT_LT(frontier_peak, buffered_peak / 4);
}

}  // namespace
}  // namespace acute::testbed
