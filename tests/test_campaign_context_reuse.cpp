// The shard-context pool's hard constraint, pinned bit for bit: a shard
// executed on a REUSED ShardContext (warm simulator, rebuilt testbed,
// reinitialized tools, reset sink scratch) must produce byte-identical
// results to one executed on a fresh context — digests (compared through
// their exact IEEE-754 serialization), JSONL export bytes and checkpoint
// records — for any worker count and across kill/resume ticks. The grid
// deliberately changes shape between consecutive shards (phone count,
// radio, tool kind, netem axes) so every reset transition of the pool is
// exercised, not just the same-shape fast path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report/jsonl_sink.hpp"
#include "stats/digest_io.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using sim::Duration;

struct TempFile {
  explicit TempFile(const std::string& name)
      : path("context_reuse_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Exact serialization of a digest vector: write_digest emits the IEEE-754
/// bit patterns of every centroid, so equal strings mean equal bits.
std::string digest_bytes(const std::vector<WorkloadDigest>& digests) {
  std::ostringstream out;
  for (const WorkloadDigest& digest : digests) {
    out << static_cast<int>(digest.tool) << ' ' << digest.probes << ' '
        << digest.lost << '\n';
    stats::write_digest(out, digest.reported_rtt_ms);
    stats::write_digest(out, digest.du_ms);
    stats::write_digest(out, digest.dk_ms);
    stats::write_digest(out, digest.dv_ms);
    stats::write_digest(out, digest.dn_ms);
  }
  return out.str();
}

/// A grid whose consecutive shards change shape: the innermost axis flips
/// the tool kind, then loss, then RTT, then the radio, then the phone
/// count — so a context that just ran a 1-phone WiFi ping shard is next
/// reset into (eventually) a 3-phone cellular AcuteMon shard.
CampaignSpec shape_shifting_spec() {
  ScenarioGrid grid;
  grid.phone_counts = {1, 3};
  grid.radios = {phone::RadioKind::wifi, phone::RadioKind::cellular};
  grid.emulated_rtts = {Duration::millis(10), Duration::millis(30)};
  grid.loss_rates = {0.0, 0.05};
  grid.workloads = {WorkloadSpec{tools::ToolKind::icmp_ping},
                    WorkloadSpec{tools::ToolKind::acutemon}};
  CampaignSpec spec;
  spec.seed = 7;
  spec.scenarios = grid.expand();  // 32 shards
  spec.probes_per_phone = 2;
  spec.probe_interval = Duration::millis(50);
  spec.probe_timeout = Duration::millis(400);
  spec.settle = Duration::millis(50);
  spec.keep_samples = false;
  return spec;
}

TEST(CampaignContextReuse, ReusedShardsMatchFreshBitForBit) {
  Campaign campaign(shape_shifting_spec());
  ShardContext context;
  for (std::size_t i = 0; i < campaign.scenario_count(); ++i) {
    const ShardResult fresh = campaign.run_shard(i);
    const ShardResult reused = campaign.run_shard(i, context);
    ASSERT_TRUE(fresh.completed);
    ASSERT_TRUE(reused.completed);
    EXPECT_EQ(fresh.scenario_index, reused.scenario_index);
    EXPECT_EQ(fresh.shard_seed, reused.shard_seed);
    EXPECT_EQ(fresh.phone_count, reused.phone_count);
    EXPECT_EQ(fresh.probes_sent, reused.probes_sent);
    EXPECT_EQ(fresh.probes_lost, reused.probes_lost);
    EXPECT_EQ(fresh.frames_on_air, reused.frames_on_air);
    EXPECT_EQ(fresh.events_fired, reused.events_fired);
    EXPECT_EQ(fresh.sim_seconds, reused.sim_seconds);
    EXPECT_EQ(digest_bytes(fresh.digests), digest_bytes(reused.digests))
        << "shard " << i << " digests differ between fresh and reused";
  }
  EXPECT_EQ(context.shards_run(), campaign.scenario_count());
  EXPECT_EQ(context.reuses(), campaign.scenario_count() - 1);
}

TEST(CampaignContextReuse, RawSampleVectorsMatchFresh) {
  CampaignSpec spec = shape_shifting_spec();
  spec.keep_samples = true;
  Campaign campaign(spec);
  ShardContext context;
  for (std::size_t i = 0; i < campaign.scenario_count(); ++i) {
    const ShardResult fresh = campaign.run_shard(i);
    const ShardResult reused = campaign.run_shard(i, context);
    EXPECT_EQ(fresh.reported_rtt_ms, reused.reported_rtt_ms);
    EXPECT_EQ(fresh.du_ms, reused.du_ms);
    EXPECT_EQ(fresh.dk_ms, reused.dk_ms);
    EXPECT_EQ(fresh.dv_ms, reused.dv_ms);
    EXPECT_EQ(fresh.dn_ms, reused.dn_ms);
  }
}

/// The campaign pool reuses one context per worker; the merged report and
/// the JSONL export must be the same bytes at 1 worker (one context runs
/// every shape transition) and 8 workers (each context sees a subsequence).
TEST(CampaignContextReuse, JsonlAndDigestsIdenticalAcrossWorkerCounts) {
  std::string reference_digests;
  std::string reference_jsonl;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    TempFile jsonl("workers_" + std::to_string(workers) + ".jsonl");
    CampaignSpec spec = shape_shifting_spec();
    {
      auto writer = std::make_shared<report::JsonlWriter>(jsonl.path);
      spec.sinks = report::jsonl_sink_factory(writer);
      Campaign campaign(spec);
      const CampaignReport report = campaign.run(workers);
      EXPECT_EQ(report.completed_shards(), campaign.scenario_count());
      const std::string digests = digest_bytes(report.workload_digests());
      if (reference_digests.empty()) {
        reference_digests = digests;
      } else {
        EXPECT_EQ(digests, reference_digests)
            << workers << "-worker digests differ from the 1-worker run";
      }
    }
    const std::string bytes = file_bytes(jsonl.path);
    ASSERT_FALSE(bytes.empty());
    if (reference_jsonl.empty()) {
      reference_jsonl = bytes;
    } else {
      EXPECT_EQ(bytes, reference_jsonl)
          << workers << "-worker JSONL differs from the 1-worker run";
    }
  }
}

/// Kill/resume across checkpointed ticks, reused contexts throughout: the
/// final merged digests and the compacted checkpoint file must be byte
/// identical to an uninterrupted single-worker run's.
TEST(CampaignContextReuse, CheckpointTicksMatchUninterruptedRun) {
  // Reference: one uninterrupted 1-worker sweep.
  TempFile reference_ckpt("reference.ckpt");
  CampaignSpec reference_spec = shape_shifting_spec();
  reference_spec.checkpoint_path = reference_ckpt.path;
  const CampaignReport reference = Campaign(reference_spec).run(1);
  const std::string reference_digests =
      digest_bytes(reference.workload_digests());

  // Ticked: 8-worker increments of at most 12 shards, a fresh Campaign per
  // tick — nothing but the checkpoint file carries state across ticks.
  TempFile ticked_ckpt("ticked.ckpt");
  CampaignReport ticked;
  for (int tick = 0; tick < 4; ++tick) {
    CampaignSpec tick_spec = shape_shifting_spec();
    tick_spec.checkpoint_path = ticked_ckpt.path;
    tick_spec.max_shards = 12;
    ticked = Campaign(tick_spec).run(8);
    if (ticked.completed_shards() == ticked.shard_count()) break;
  }
  EXPECT_EQ(ticked.completed_shards(), reference.completed_shards());
  EXPECT_EQ(digest_bytes(ticked.workload_digests()), reference_digests);
  EXPECT_EQ(ticked.total_probes(), reference.total_probes());
  EXPECT_EQ(ticked.total_lost(), reference.total_lost());

  // Raw files may order lines by completion; compact both through one more
  // resume (load rewrites the file in ascending scenario order) and the
  // bytes must then match exactly.
  for (const std::string* path : {&reference_ckpt.path, &ticked_ckpt.path}) {
    CampaignSpec compact_spec = shape_shifting_spec();
    compact_spec.checkpoint_path = *path;
    const CampaignReport compacted = Campaign(compact_spec).run(1);
    EXPECT_EQ(compacted.completed_shards(), compacted.shard_count());
    EXPECT_EQ(digest_bytes(compacted.workload_digests()), reference_digests);
  }
  const std::string reference_bytes = file_bytes(reference_ckpt.path);
  ASSERT_FALSE(reference_bytes.empty());
  EXPECT_EQ(file_bytes(ticked_ckpt.path), reference_bytes)
      << "compacted checkpoints differ between ticked 8-worker and "
         "uninterrupted 1-worker sweeps";
}

/// Frontier mode (the 10^5+-shard configuration): folded accumulators are
/// byte-identical across worker counts with contexts reused per worker.
TEST(CampaignContextReuse, FrontierFoldIdenticalAcrossWorkerCounts) {
  CampaignSpec spec = shape_shifting_spec();
  spec.retain_shards = false;
  std::string reference;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    const CampaignReport report = Campaign(spec).run(workers);
    EXPECT_TRUE(report.frontier.active);
    EXPECT_EQ(report.completed_shards(), report.shard_count());
    const std::string digests = digest_bytes(report.workload_digests());
    if (reference.empty()) {
      reference = digests;
    } else {
      EXPECT_EQ(digests, reference);
    }
  }
}

}  // namespace
}  // namespace acute::testbed
