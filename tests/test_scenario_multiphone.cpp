// Multi-phone scenarios: heterogeneous handsets contending on one channel.
// Each phone's LayerSample decomposition must stay internally consistent
// (du >= dk >= dv >= dn) and channel contention must inflate the network
// RTT (dn) for every phone.
#include <gtest/gtest.h>

#include <vector>

#include "sim/contracts.hpp"
#include "stats/summary.hpp"
#include "testbed/testbed.hpp"
#include "tools/ping.hpp"

namespace acute::testbed {
namespace {

using namespace acute::sim::literals;
using core::LayerSample;
using phone::PhoneProfile;
using sim::Duration;

/// ping's sub-100 ms output resolution is 0.1 ms, so the *reported* du can
/// sit up to ~0.1 ms below the stamp-derived value; everything below dk is
/// stamp-derived and strictly ordered.
constexpr double kReportSlackMs = 0.15;

ScenarioSpec two_phone_spec() {
  ScenarioSpec spec;
  spec.phones = {PhoneSpec{PhoneProfile::nexus5(), ""},
                 PhoneSpec{PhoneProfile::nexus4(), ""}};
  spec.seed = 42;
  spec.emulated_rtt = 20_ms;
  return spec;
}

/// Runs one concurrent ping per phone and returns each phone's samples.
std::vector<std::vector<LayerSample>> ping_all_phones(Testbed& testbed,
                                                      int probes) {
  testbed.settle(800_ms);
  std::vector<std::unique_ptr<tools::IcmpPing>> pings;
  std::vector<tools::MeasurementTool*> running;
  for (std::size_t i = 0; i < testbed.phone_count(); ++i) {
    tools::MeasurementTool::Config config;
    config.probe_count = probes;
    config.interval = 200_ms;
    config.timeout = 1_s;
    config.target = Testbed::kServerId;
    pings.push_back(
        std::make_unique<tools::IcmpPing>(testbed.phone(i), config));
    pings.back()->start();
    running.push_back(pings.back().get());
  }
  testbed.run_until_all_finished(running);
  std::vector<std::vector<LayerSample>> samples;
  for (const auto& ping : pings) {
    samples.push_back(testbed.layer_samples(ping->result()));
  }
  return samples;
}

TEST(MultiPhoneScenario, BuildsHeterogeneousPhonesWithDistinctIds) {
  Testbed testbed(two_phone_spec());
  ASSERT_EQ(testbed.phone_count(), 2u);
  EXPECT_EQ(testbed.phone(0).id(), Testbed::kPhoneId);
  EXPECT_EQ(testbed.phone(1).id(), Testbed::kExtraPhoneBaseId);
  EXPECT_EQ(testbed.phone(0).profile().name, PhoneProfile::nexus5().name);
  EXPECT_EQ(testbed.phone(1).profile().name, PhoneProfile::nexus4().name);
  // Both handsets share the channel and are associated at the AP.
  EXPECT_EQ(testbed.ap().associated_listen_interval(Testbed::kPhoneId),
            PhoneProfile::nexus5().associated_listen_interval);
  EXPECT_EQ(testbed.ap().associated_listen_interval(
                Testbed::kExtraPhoneBaseId),
            PhoneProfile::nexus4().associated_listen_interval);
}

TEST(MultiPhoneScenario, EachPhonesDecompositionStaysConsistent) {
  Testbed testbed(two_phone_spec());
  const auto per_phone = ping_all_phones(testbed, 40);
  ASSERT_EQ(per_phone.size(), 2u);
  for (std::size_t i = 0; i < per_phone.size(); ++i) {
    ASSERT_GE(per_phone[i].size(), 30u) << "phone " << i;
    for (const LayerSample& s : per_phone[i]) {
      EXPECT_GE(s.du_ms, s.dk_ms - kReportSlackMs) << "phone " << i;
      EXPECT_GE(s.dk_ms, s.dv_ms) << "phone " << i;
      EXPECT_GE(s.dv_ms, s.dn_ms) << "phone " << i;
      EXPECT_GT(s.dn_ms, 0.0) << "phone " << i;
    }
  }
}

TEST(MultiPhoneScenario, ContentionRaisesDnForBothPhones) {
  // Quiet channel baseline.
  Testbed quiet(two_phone_spec());
  const auto quiet_samples = ping_all_phones(quiet, 40);

  // Same scenario under §4.3-style congestion (mixed PHY + iPerf load).
  ScenarioSpec busy_spec = two_phone_spec();
  busy_spec.congested_phy = true;
  Testbed busy(busy_spec);
  busy.start_cross_traffic();
  busy.settle(2_s);
  const auto busy_samples = ping_all_phones(busy, 40);

  for (std::size_t i = 0; i < 2; ++i) {
    const double quiet_dn = stats::Summary(
        core::extract(quiet_samples[i], &LayerSample::dn_ms)).median();
    const double busy_dn = stats::Summary(
        core::extract(busy_samples[i], &LayerSample::dn_ms)).median();
    EXPECT_GT(busy_dn, quiet_dn + 0.5) << "phone " << i;
  }
}

TEST(MultiPhoneScenario, ScenariosAreDeterministic) {
  auto run = [] {
    Testbed testbed(two_phone_spec());
    const auto per_phone = ping_all_phones(testbed, 15);
    std::vector<double> flat;
    for (const auto& samples : per_phone) {
      for (const LayerSample& s : samples) {
        flat.push_back(s.du_ms);
        flat.push_back(s.dn_ms);
      }
    }
    return flat;
  };
  EXPECT_EQ(run(), run());
}

TEST(MultiPhoneScenario, RejectsDuplicateOrReservedPhoneLabels) {
  ScenarioSpec duplicate = two_phone_spec();
  duplicate.phones[0].label = "dut";
  duplicate.phones[1].label = "dut";
  EXPECT_THROW(Testbed{duplicate}, sim::ContractViolation);

  ScenarioSpec reserved = two_phone_spec();
  reserved.phones[1].label = "loadgen";  // infrastructure rng tag
  EXPECT_THROW(Testbed{reserved}, sim::ContractViolation);

  ScenarioSpec empty = two_phone_spec();
  empty.phones.clear();
  EXPECT_THROW(Testbed{empty}, sim::ContractViolation);
}

TEST(MultiPhoneScenario, Fig2SpecMatchesTestbedConfigDefaults) {
  const ScenarioSpec spec = ScenarioSpec::fig2();
  ASSERT_EQ(spec.phones.size(), 1u);
  EXPECT_EQ(spec.sniffer_count, 3u);
  Testbed from_spec{spec};
  Testbed from_config{TestbedConfig{}};
  EXPECT_EQ(from_spec.phone_count(), from_config.phone_count());
  EXPECT_EQ(from_spec.sniffer_count(), from_config.sniffer_count());
  EXPECT_EQ(from_spec.phone().id(), Testbed::kPhoneId);
}

}  // namespace
}  // namespace acute::testbed
