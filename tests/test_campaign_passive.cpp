// The passive campaign axis, pinned bit for bit: a grid mixing active-only
// and passive-vantage workloads must merge byte-identically for any worker
// count, on fresh and reused shard contexts, and across kill/resume ticks
// in frontier mode — and the passive observers must be pure observers (a
// workload with a passive vantage produces the exact same ACTIVE samples
// as the same workload without it).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report/jsonl_sink.hpp"
#include "sim/contracts.hpp"
#include "stats/digest_io.hpp"
#include "testbed/campaign.hpp"

namespace acute::testbed {
namespace {

using passive::PassiveVantage;
using sim::Duration;
using tools::ToolKind;

struct TempFile {
  explicit TempFile(const std::string& name)
      : path("campaign_passive_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Exact serialization of a digest vector, passive accumulators included:
/// write_digest emits IEEE-754 bit patterns, so equal strings = equal bits.
std::string digest_bytes(const std::vector<WorkloadDigest>& digests) {
  std::ostringstream out;
  for (const WorkloadDigest& digest : digests) {
    out << static_cast<int>(digest.tool) << ' ' << digest.probes << ' '
        << digest.lost << ' ' << digest.passive_sniffer_samples << ' '
        << digest.passive_app_samples << '\n';
    stats::write_digest(out, digest.reported_rtt_ms);
    stats::write_digest(out, digest.du_ms);
    stats::write_digest(out, digest.dk_ms);
    stats::write_digest(out, digest.dv_ms);
    stats::write_digest(out, digest.dn_ms);
    stats::write_digest(out, digest.passive_sniffer_rtt_ms);
    stats::write_digest(out, digest.passive_app_rtt_ms);
  }
  return out.str();
}

WorkloadSpec workload(ToolKind tool, PassiveVantage vantage) {
  WorkloadSpec spec;
  spec.tool = tool;
  spec.passive = vantage;
  return spec;
}

/// The acceptance grid: active-only, sniffer-only, exec-env-only and
/// both-vantage workloads mixed with multi-phone scenarios (two phones on
/// one channel share one sniffer and collide on equal per-phone flow ids,
/// so the estimator's (node, flow) keying is exercised, not just assumed).
CampaignSpec passive_mix_spec() {
  ScenarioGrid grid;
  grid.phone_counts = {1, 2};
  grid.emulated_rtts = {Duration::millis(10)};
  grid.workloads = {workload(ToolKind::icmp_ping, PassiveVantage::none),
                    workload(ToolKind::java_ping, PassiveVantage::sniffer),
                    workload(ToolKind::httping, PassiveVantage::both),
                    workload(ToolKind::acutemon, PassiveVantage::exec_env)};
  CampaignSpec spec;
  spec.seed = 2016;
  spec.scenarios = grid.expand();  // 8 shards
  spec.probes_per_phone = 4;
  spec.probe_interval = Duration::millis(60);
  spec.probe_timeout = Duration::millis(900);
  spec.settle = Duration::millis(60);
  return spec;
}

TEST(CampaignPassive, PassiveSamplesFlowIntoDigestsAndBuffers) {
  Campaign campaign(passive_mix_spec());
  // Shard 1: one phone, java_ping + sniffer vantage.
  const ShardResult sniffer_shard = campaign.run_shard(1);
  ASSERT_EQ(sniffer_shard.digests.size(), 1u);
  EXPECT_EQ(sniffer_shard.digests[0].tool, ToolKind::java_ping);
  EXPECT_EQ(sniffer_shard.digests[0].passive_sniffer_samples, 4u);
  EXPECT_EQ(sniffer_shard.digests[0].passive_app_samples, 0u);
  EXPECT_EQ(sniffer_shard.passive_sniffer_rtt_ms.size(), 4u);
  EXPECT_TRUE(sniffer_shard.passive_app_rtt_ms.empty());
  // Passive samples never count as probes.
  EXPECT_EQ(sniffer_shard.probes_sent, 4u);

  // Shard 2: one phone, httping + both vantages (httping = N+1 exchanges).
  const ShardResult both_shard = campaign.run_shard(2);
  ASSERT_EQ(both_shard.digests.size(), 1u);
  EXPECT_EQ(both_shard.digests[0].passive_sniffer_samples, 5u);
  EXPECT_EQ(both_shard.digests[0].passive_app_samples, 5u);
  EXPECT_EQ(both_shard.probes_sent, 4u);

  // Shard 0: active-only control — every passive surface stays empty.
  const ShardResult control = campaign.run_shard(0);
  ASSERT_EQ(control.digests.size(), 1u);
  EXPECT_EQ(control.digests[0].passive_sniffer_samples, 0u);
  EXPECT_EQ(control.digests[0].passive_app_samples, 0u);
  EXPECT_TRUE(control.passive_sniffer_rtt_ms.empty());
  EXPECT_TRUE(control.passive_app_rtt_ms.empty());
}

TEST(CampaignPassive, ObserversDoNotPerturbTheActiveMeasurement) {
  // The same scenario with and without passive vantage points must report
  // the exact same active samples: attaching an observer is not allowed to
  // shift a single event in the simulation.
  CampaignSpec with = passive_mix_spec();
  CampaignSpec without = passive_mix_spec();
  for (ScenarioSpec& scenario : without.scenarios) {
    for (PhoneSpec& phone : scenario.phones) {
      phone.workload.passive = PassiveVantage::none;
    }
  }
  for (std::size_t i = 0; i < with.scenarios.size(); ++i) {
    const ShardResult observed = Campaign(with).run_shard(i);
    const ShardResult plain = Campaign(without).run_shard(i);
    EXPECT_EQ(observed.reported_rtt_ms, plain.reported_rtt_ms) << "shard " << i;
    EXPECT_EQ(observed.du_ms, plain.du_ms) << "shard " << i;
    EXPECT_EQ(observed.dn_ms, plain.dn_ms) << "shard " << i;
    EXPECT_EQ(observed.probes_sent, plain.probes_sent);
    EXPECT_EQ(observed.probes_lost, plain.probes_lost);
    EXPECT_EQ(observed.frames_on_air, plain.frames_on_air);
    EXPECT_EQ(observed.sim_seconds, plain.sim_seconds);
  }
}

TEST(CampaignPassive, FreshAndReusedContextsMatchBitForBit) {
  Campaign campaign(passive_mix_spec());
  ShardContext context;
  for (std::size_t i = 0; i < campaign.scenario_count(); ++i) {
    const ShardResult fresh = campaign.run_shard(i);
    const ShardResult reused = campaign.run_shard(i, context);
    EXPECT_EQ(fresh.probes_sent, reused.probes_sent);
    EXPECT_EQ(fresh.reported_rtt_ms, reused.reported_rtt_ms);
    EXPECT_EQ(fresh.passive_sniffer_rtt_ms, reused.passive_sniffer_rtt_ms)
        << "shard " << i;
    EXPECT_EQ(fresh.passive_app_rtt_ms, reused.passive_app_rtt_ms)
        << "shard " << i;
    EXPECT_EQ(digest_bytes(fresh.digests), digest_bytes(reused.digests))
        << "shard " << i;
  }
  EXPECT_EQ(context.reuses(), campaign.scenario_count() - 1);
}

TEST(CampaignPassive, JsonlAndDigestsIdenticalAcrossWorkerCounts) {
  std::string reference_digests;
  std::string reference_jsonl;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    TempFile jsonl("workers_" + std::to_string(workers) + ".jsonl");
    CampaignSpec spec = passive_mix_spec();
    {
      auto writer = std::make_shared<report::JsonlWriter>(jsonl.path);
      spec.sinks = report::jsonl_sink_factory(writer);
      Campaign campaign(spec);
      const CampaignReport report = campaign.run(workers);
      EXPECT_EQ(report.completed_shards(), campaign.scenario_count());
      const std::string digests = digest_bytes(report.workload_digests());
      if (reference_digests.empty()) {
        reference_digests = digests;
      } else {
        EXPECT_EQ(digests, reference_digests)
            << workers << "-worker digests differ from the 1-worker run";
      }
    }
    const std::string bytes = file_bytes(jsonl.path);
    ASSERT_FALSE(bytes.empty());
    // Passive events are exported with their vantage spelled out.
    EXPECT_NE(bytes.find("\"vantage\":\"passive-sniffer\""), std::string::npos);
    EXPECT_NE(bytes.find("\"vantage\":\"passive-app\""), std::string::npos);
    EXPECT_NE(bytes.find("\"vantage\":\"active\""), std::string::npos);
    if (reference_jsonl.empty()) {
      reference_jsonl = bytes;
    } else {
      EXPECT_EQ(bytes, reference_jsonl)
          << workers << "-worker JSONL differs from the 1-worker run";
    }
  }
}

TEST(CampaignPassive, FrontierKillResumeTicksMatchUninterruptedRun) {
  // Reference: uninterrupted 1-worker frontier sweep.
  TempFile reference_ckpt("reference.ckpt");
  CampaignSpec reference_spec = passive_mix_spec();
  reference_spec.keep_samples = false;
  reference_spec.retain_shards = false;
  reference_spec.checkpoint_path = reference_ckpt.path;
  const CampaignReport reference = Campaign(reference_spec).run(1);
  EXPECT_TRUE(reference.frontier.active);
  const std::string reference_digests =
      digest_bytes(reference.workload_digests());

  // Ticked: 8-worker increments of at most 3 shards, a fresh Campaign per
  // tick — only the checkpoint file carries state across the kills.
  TempFile ticked_ckpt("ticked.ckpt");
  CampaignReport ticked;
  for (int tick = 0; tick < 8; ++tick) {
    CampaignSpec tick_spec = passive_mix_spec();
    tick_spec.keep_samples = false;
    tick_spec.retain_shards = false;
    tick_spec.checkpoint_path = ticked_ckpt.path;
    tick_spec.max_shards = 3;
    ticked = Campaign(tick_spec).run(8);
    if (ticked.completed_shards() == ticked.shard_count()) break;
  }
  EXPECT_EQ(ticked.completed_shards(), reference.completed_shards());
  EXPECT_EQ(digest_bytes(ticked.workload_digests()), reference_digests);
  EXPECT_EQ(ticked.total_probes(), reference.total_probes());

  // Compact both files through one more resume: byte-identical checkpoints.
  for (const std::string* path : {&reference_ckpt.path, &ticked_ckpt.path}) {
    CampaignSpec compact_spec = passive_mix_spec();
    compact_spec.keep_samples = false;
    compact_spec.retain_shards = false;
    compact_spec.checkpoint_path = *path;
    const CampaignReport compacted = Campaign(compact_spec).run(1);
    EXPECT_EQ(compacted.completed_shards(), compacted.shard_count());
    EXPECT_EQ(digest_bytes(compacted.workload_digests()), reference_digests);
  }
  const std::string reference_bytes = file_bytes(reference_ckpt.path);
  ASSERT_FALSE(reference_bytes.empty());
  EXPECT_EQ(file_bytes(ticked_ckpt.path), reference_bytes);
}

TEST(CampaignPassive, PassiveAxisIsPartOfTheSpecHash) {
  // A checkpoint written with passive vantage points cannot be resumed by a
  // spec whose passive axis was edited away: the spec hash must differ.
  TempFile ckpt("hash.ckpt");
  CampaignSpec spec = passive_mix_spec();
  spec.checkpoint_path = ckpt.path;
  (void)Campaign(spec).run(2);

  CampaignSpec edited = passive_mix_spec();
  for (ScenarioSpec& scenario : edited.scenarios) {
    for (PhoneSpec& phone : scenario.phones) {
      phone.workload.passive = PassiveVantage::none;
    }
  }
  edited.checkpoint_path = ckpt.path;
  EXPECT_THROW((void)Campaign(edited).run(1), sim::ContractViolation);
}

}  // namespace
}  // namespace acute::testbed
