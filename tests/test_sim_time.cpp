#include <gtest/gtest.h>

#include <sstream>

#include "sim/time.hpp"

namespace acute::sim {
namespace {

using namespace acute::sim::literals;

TEST(Duration, FactoryUnitsAgree) {
  EXPECT_EQ(Duration::micros(1).count_nanos(), 1'000);
  EXPECT_EQ(Duration::millis(1).count_nanos(), 1'000'000);
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_EQ(Duration::millis(3), Duration::micros(3'000));
}

TEST(Duration, LiteralsMatchFactories) {
  EXPECT_EQ(5_ns, Duration::nanos(5));
  EXPECT_EQ(5_us, Duration::micros(5));
  EXPECT_EQ(5_ms, Duration::millis(5));
  EXPECT_EQ(5_s, Duration::seconds(5));
}

TEST(Duration, FromMsRoundsToNanos) {
  EXPECT_EQ(Duration::millis(1.5).count_nanos(), 1'500'000);
  EXPECT_EQ(Duration::millis(0.0001).count_nanos(), 100);
  EXPECT_EQ(Duration::micros(2.5).count_nanos(), 2'500);
  EXPECT_EQ(Duration::seconds(0.25).count_nanos(), 250'000'000);
}

TEST(Duration, ConversionRoundTrip) {
  const Duration d = Duration::millis(12.345);
  EXPECT_DOUBLE_EQ(d.to_ms(), 12.345);
  EXPECT_DOUBLE_EQ(d.to_us(), 12'345.0);
  EXPECT_NEAR(d.to_seconds(), 0.012345, 1e-12);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(3_ms + 4_ms, 7_ms);
  EXPECT_EQ(10_ms - 4_ms, 6_ms);
  EXPECT_EQ(-(4_ms), Duration::millis(-4));
  EXPECT_EQ(3_ms * 4, 12_ms);
  EXPECT_EQ(12_ms / 4, 3_ms);
  Duration d = 1_ms;
  d += 2_ms;
  EXPECT_EQ(d, 3_ms);
  d -= 1_ms;
  EXPECT_EQ(d, 2_ms);
}

TEST(Duration, DividedByCountsTicks) {
  EXPECT_EQ((55_ms).divided_by(10_ms), 5);
  EXPECT_EQ((50_ms).divided_by(10_ms), 5);
  EXPECT_EQ((49_ms).divided_by(10_ms), 4);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GE(2_ms, 2_ms);
  EXPECT_TRUE((0_ms).is_zero());
  EXPECT_TRUE((Duration::millis(-1)).is_negative());
  EXPECT_FALSE((1_ns).is_negative());
}

TEST(Duration, ToStringPicksUnit) {
  EXPECT_EQ(Duration::nanos(12).to_string(), "12ns");
  EXPECT_NE(Duration::micros(12).to_string().find("us"), std::string::npos);
  EXPECT_NE(Duration::millis(12).to_string().find("ms"), std::string::npos);
  EXPECT_NE(Duration::seconds(2).to_string().find("s"), std::string::npos);
}

TEST(TimePoint, EpochAndArithmetic) {
  const TimePoint t0 = TimePoint::epoch();
  EXPECT_EQ(t0.count_nanos(), 0);
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0), 5_ms);
  EXPECT_EQ((t1 - 2_ms).count_nanos(), 3'000'000);
  TimePoint t = t0;
  t += 7_ms;
  EXPECT_EQ(t.to_ms(), 7.0);
}

TEST(TimePoint, Comparisons) {
  const TimePoint a = TimePoint::from_nanos(10);
  const TimePoint b = TimePoint::from_nanos(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(a, TimePoint::from_nanos(10));
}

TEST(TimePoint, StreamOutput) {
  std::ostringstream os;
  os << (TimePoint::epoch() + 1500_ms) << " " << 250_us;
  EXPECT_EQ(os.str(), "1.5s 250us");
}

}  // namespace
}  // namespace acute::sim
