#include <gtest/gtest.h>

#include <vector>

#include "sim/contracts.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace acute::sim {
namespace {

using namespace acute::sim::literals;

TEST(Simulator, StartsAtEpoch) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::epoch());
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator sim;
  std::vector<double> fire_times;
  sim.schedule_in(10_ms, [&] { fire_times.push_back(sim.now().to_ms()); });
  sim.schedule_in(5_ms, [&] { fire_times.push_back(sim.now().to_ms()); });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fire_times, (std::vector<double>{5.0, 10.0}));
  EXPECT_EQ(sim.now().to_ms(), 10.0);
}

TEST(Simulator, RunUntilAdvancesClockToDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(5_ms, [&] { ++fired; });
  sim.schedule_in(50_ms, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(sim.now() + 20_ms), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().to_ms(), 20.0);  // clock lands on the deadline
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunForIsRelative) {
  Simulator sim;
  sim.schedule_in(5_ms, [] {});
  sim.run_for(10_ms);
  EXPECT_EQ(sim.now().to_ms(), 10.0);
  sim.run_for(10_ms);
  EXPECT_EQ(sim.now().to_ms(), 20.0);
}

TEST(Simulator, EventsScheduledWhileRunningFire) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_in(1_ms, [&] {
    order.push_back(1);
    sim.schedule_in(1_ms, [&] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now().to_ms(), 2.0);
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator sim;
  sim.schedule_in(3_ms, [&] {
    sim.schedule_in(Duration{}, [&] { EXPECT_EQ(sim.now().to_ms(), 3.0); });
  });
  sim.run();
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(1_ms, [&] { ++fired; });
  sim.schedule_in(2_ms, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancellationPreventsFiring) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_in(1_ms, [&] { ++fired; });
  handle.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, CancelAfterFireIsNoOp) {
  Simulator sim;
  int fired = 0;
  auto handle = sim.schedule_in(1_ms, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // already fired: must not disturb anything
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, HandleOutlivingSimulatorIsSafe) {
  EventHandle handle;
  {
    Simulator sim;
    handle = sim.schedule_in(10_ms, [] {});
    EXPECT_TRUE(handle.pending());
  }
  // The simulator (and its queue, slot pool and arena) are gone; the handle
  // must report not-pending and cancel must be inert.
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(Simulator, SchedulingInThePastViolatesContract) {
  Simulator sim;
  sim.schedule_in(5_ms, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::epoch(), [] {}),
               ContractViolation);
  EXPECT_THROW(sim.schedule_in(Duration::millis(-1), [] {}),
               ContractViolation);
}

TEST(Simulator, EventLimitCatchesRunawayLoops) {
  Simulator sim;
  sim.set_event_limit(100);
  std::function<void()> loop = [&] { sim.schedule_in(1_ns, loop); };
  sim.schedule_in(1_ns, loop);
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(OneShotTimer, FiresAfterDelay) {
  Simulator sim;
  int fired = 0;
  OneShotTimer timer(sim, [&] { ++fired; });
  timer.restart(10_ms);
  EXPECT_TRUE(timer.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(OneShotTimer, RestartPushesDeadlineOut) {
  Simulator sim;
  std::vector<double> fire_times;
  OneShotTimer timer(sim, [&] { fire_times.push_back(sim.now().to_ms()); });
  timer.restart(10_ms);
  sim.schedule_in(5_ms, [&] { timer.restart(10_ms); });
  sim.run();
  EXPECT_EQ(fire_times, std::vector<double>{15.0});
}

TEST(OneShotTimer, CancelStopsIt) {
  Simulator sim;
  int fired = 0;
  OneShotTimer timer(sim, [&] { ++fired; });
  timer.restart(10_ms);
  timer.cancel();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(PeriodicTimer, TicksAreDriftFree) {
  Simulator sim;
  std::vector<double> tick_times;
  PeriodicTimer timer(sim, 10_ms, [&](std::uint64_t) {
    tick_times.push_back(sim.now().to_ms());
  });
  timer.start();
  sim.run_for(45_ms);
  timer.stop();
  EXPECT_EQ(tick_times, (std::vector<double>{0, 10, 20, 30, 40}));
}

TEST(PeriodicTimer, InitialDelayShiftsPhase) {
  Simulator sim;
  std::vector<double> tick_times;
  PeriodicTimer timer(sim, 10_ms, [&](std::uint64_t) {
    tick_times.push_back(sim.now().to_ms());
  });
  timer.start(3_ms);
  sim.run_for(25_ms);
  timer.stop();
  EXPECT_EQ(tick_times, (std::vector<double>{3, 13, 23}));
}

TEST(PeriodicTimer, TickIndicesIncrease) {
  Simulator sim;
  std::vector<std::uint64_t> indices;
  PeriodicTimer timer(sim, 5_ms,
                      [&](std::uint64_t i) { indices.push_back(i); });
  timer.start();
  sim.run_for(12_ms);
  timer.stop();
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(PeriodicTimer, StopInsideCallbackWins) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 5_ms, [&](std::uint64_t) {
    if (++ticks == 2) timer.stop();
  });
  timer.start();
  sim.run_for(100_ms);
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, RequiresPositivePeriod) {
  Simulator sim;
  EXPECT_THROW(PeriodicTimer(sim, Duration{}, [](std::uint64_t) {}),
               ContractViolation);
}

}  // namespace
}  // namespace acute::sim
