#include <gtest/gtest.h>

#include <vector>

#include "sim/contracts.hpp"
#include "sim/event_queue.hpp"

namespace acute::sim {
namespace {

using namespace acute::sim::literals;

TimePoint at(std::int64_t ms) {
  return TimePoint::epoch() + Duration::millis(ms);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.push(at(30), [&] { order.push_back(3); });
  (void)queue.push(at(10), [&] { order.push_back(1); });
  (void)queue.push(at(20), [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    (void)queue.push(at(5), [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  auto h1 = queue.push(at(1), [] {});
  auto h2 = queue.push(at(2), [] {});
  EXPECT_EQ(queue.size(), 2u);
  h1.cancel();
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.empty());
  (void)h2;
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  std::vector<int> order;
  auto h1 = queue.push(at(1), [&] { order.push_back(1); });
  (void)queue.push(at(2), [&] { order.push_back(2); });
  h1.cancel();
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, HandlePendingReflectsState) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, HandleOfFiredEventIsNotPending) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  (void)queue.pop();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // harmless after firing
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(EventQueue, HandleOutlivingQueueIsSafe) {
  EventHandle handle;
  {
    EventQueue queue;
    handle = queue.push(at(1), [] {});
  }
  handle.cancel();  // must not crash or touch freed memory
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue queue;
  auto h1 = queue.push(at(1), [] {});
  (void)queue.push(at(5), [] {});
  EXPECT_EQ(queue.next_time(), at(1));
  h1.cancel();
  EXPECT_EQ(queue.next_time(), at(5));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  (void)queue.push(at(1), [] {});
  (void)queue.push(at(2), [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopOnEmptyViolatesContract) {
  EventQueue queue;
  EXPECT_THROW((void)queue.pop(), ContractViolation);
  EXPECT_THROW((void)queue.next_time(), ContractViolation);
}

TEST(EventQueue, PushRequiresCallable) {
  EventQueue queue;
  EXPECT_THROW((void)queue.push(at(1), EventFn{}), ContractViolation);
}

}  // namespace
}  // namespace acute::sim
