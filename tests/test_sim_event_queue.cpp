#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/event_queue.hpp"

namespace acute::sim {
namespace {

using namespace acute::sim::literals;

TimePoint at(std::int64_t ms) {
  return TimePoint::epoch() + Duration::millis(ms);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  (void)queue.push(at(30), [&] { order.push_back(3); });
  (void)queue.push(at(10), [&] { order.push_back(1); });
  (void)queue.push(at(20), [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    (void)queue.push(at(5), [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  auto h1 = queue.push(at(1), [] {});
  auto h2 = queue.push(at(2), [] {});
  EXPECT_EQ(queue.size(), 2u);
  h1.cancel();
  EXPECT_EQ(queue.size(), 1u);
  (void)queue.pop();
  EXPECT_TRUE(queue.empty());
  (void)h2;
}

TEST(EventQueue, CancelledEventsAreSkipped) {
  EventQueue queue;
  std::vector<int> order;
  auto h1 = queue.push(at(1), [&] { order.push_back(1); });
  (void)queue.push(at(2), [&] { order.push_back(2); });
  h1.cancel();
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, HandlePendingReflectsState) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
}

TEST(EventQueue, HandleOfFiredEventIsNotPending) {
  EventQueue queue;
  auto handle = queue.push(at(1), [] {});
  (void)queue.pop();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // harmless after firing
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(EventQueue, HandleOutlivingQueueIsSafe) {
  EventHandle handle;
  {
    EventQueue queue;
    handle = queue.push(at(1), [] {});
  }
  handle.cancel();  // must not crash or touch freed memory
}

TEST(EventQueue, StaleHandleCannotCancelSlotReuse) {
  // The slot pool recycles LIFO, so the second push reuses the fired
  // event's slot. The stale handle's generation no longer matches and must
  // not be able to cancel (or observe) the slot's new tenant.
  EventQueue queue;
  int fired = 0;
  auto h1 = queue.push(at(1), [&] { ++fired; });
  queue.pop().fn();  // fires event 1 and frees its slot
  auto h2 = queue.push(at(2), [&] { ++fired; });
  h1.cancel();  // generation mismatch: must be a no-op
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(h2.pending());
  ASSERT_EQ(queue.size(), 1u);
  queue.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StaleHandleAfterCancelCannotTouchReusedSlot) {
  EventQueue queue;
  int fired = 0;
  auto h1 = queue.push(at(1), [&] { ++fired; });
  h1.cancel();
  // Drain the dead entry so its slot returns to the pool, then reuse it.
  EXPECT_TRUE(queue.empty());
  auto h2 = queue.push(at(2), [&] { ++fired; });
  h1.cancel();  // double-stale: already cancelled AND the slot moved on
  EXPECT_TRUE(h2.pending());
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, HandleCopiesShareTheEvent) {
  EventQueue queue;
  auto h1 = queue.push(at(1), [] {});
  EventHandle h2 = h1;
  EXPECT_TRUE(h1.pending());
  EXPECT_TRUE(h2.pending());
  h2.cancel();
  EXPECT_FALSE(h1.pending());
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SizeIsPlainCountAcrossCancelPopAndCompaction) {
  // empty()/size() read a plain member (no indirection); the count must
  // stay exact through every path that retires events.
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(queue.push(at(i), [] {}));
  }
  EXPECT_EQ(queue.size(), 200u);
  for (int i = 0; i < 200; i += 2) handles[i].cancel();
  EXPECT_EQ(queue.size(), 100u);
  for (int i = 0; i < 50; ++i) (void)queue.pop();
  EXPECT_EQ(queue.size(), 50u);
  // Force the compaction threshold (cancelled >= live, >= 64 entries).
  for (int i = 1; i < 200; i += 2) handles[i].cancel();
  (void)queue.push(at(1000), [] {});
  EXPECT_EQ(queue.size(), 1u);
  queue.clear();
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, NextTimeReportsEarliestLive) {
  EventQueue queue;
  auto h1 = queue.push(at(1), [] {});
  (void)queue.push(at(5), [] {});
  EXPECT_EQ(queue.next_time(), at(1));
  h1.cancel();
  EXPECT_EQ(queue.next_time(), at(5));
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue queue;
  (void)queue.push(at(1), [] {});
  (void)queue.push(at(2), [] {});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, PopOnEmptyViolatesContract) {
  EventQueue queue;
  EXPECT_THROW((void)queue.pop(), ContractViolation);
  EXPECT_THROW((void)queue.next_time(), ContractViolation);
}

TEST(EventQueue, PushRequiresCallable) {
  EventQueue queue;
  EXPECT_THROW((void)queue.push(at(1), EventFn{}), ContractViolation);
}

TEST(EventQueue, NullFunctionPointerRejectedAtPush) {
  EventQueue queue;
  void (*null_fn)() = nullptr;
  EXPECT_THROW((void)queue.push(at(1), null_fn), ContractViolation);
  std::function<void()> empty_fn;
  EXPECT_THROW((void)queue.push(at(1), std::move(empty_fn)),
               ContractViolation);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, ThrowingCallbackDoesNotLeakSlots) {
  // A callback that throws must still return its slot to the pool on the
  // unwind path; leaking one per throw would grow the chunk count.
  EventQueue queue;
  for (int i = 0; i < 1000; ++i) {
    (void)queue.push(at(i), [] { throw std::runtime_error("boom"); });
    EXPECT_THROW((void)queue.fire_one([](TimePoint) {}), std::runtime_error);
    EXPECT_TRUE(queue.empty());
  }
  EXPECT_EQ(queue.slot_chunks(), 1u);
}

TEST(EventQueue, CompactsWhenCancelledEventsDominate) {
  // Campaign-style load: every probe arms a timeout that is then cancelled.
  // Lazy deletion alone would keep all dead entries in the heap until their
  // fire time; compaction must bound the raw entry count near the live one.
  EventQueue queue;
  std::vector<EventHandle> handles;
  constexpr int kEvents = 4096;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(queue.push(at(1000 + i), [] {}));
  }
  for (int i = 0; i < kEvents; ++i) {
    if (i % 16 != 0) handles[i].cancel();  // 15/16 cancelled
  }
  // One more push crosses the cancelled > live threshold and compacts.
  (void)queue.push(at(10'000), [] {});
  EXPECT_GE(queue.compactions(), 1u);
  EXPECT_LE(queue.heap_entries(), 2 * queue.size() + EventQueue::kCompactMinEntries);

  // Behaviour is unchanged: survivors pop in time order.
  std::int64_t last = -1;
  std::size_t fired = 0;
  while (!queue.empty()) {
    const auto event = queue.pop();
    const std::int64_t ms = (event.when - TimePoint::epoch()).count_nanos();
    EXPECT_GE(ms, last);
    last = ms;
    ++fired;
  }
  EXPECT_EQ(fired, kEvents / 16 + 1);
}

TEST(EventQueue, SmallQueuesNeverCompact) {
  EventQueue queue;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 32; ++i) {
    handles.push_back(queue.push(at(i), [] {}));
  }
  for (auto& handle : handles) handle.cancel();
  (void)queue.push(at(100), [] {});
  EXPECT_EQ(queue.compactions(), 0u);
}

}  // namespace
}  // namespace acute::sim
