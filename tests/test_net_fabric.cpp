// Wired substrate: Link timing, Switch learning, NetemQdisc shaping.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "net/netem.hpp"
#include "net/node.hpp"
#include "net/switch.hpp"
#include "sim/contracts.hpp"
#include "sim/simulator.hpp"

namespace acute::net {
namespace {

using namespace acute::sim::literals;
using sim::Duration;
using sim::Simulator;

/// Records every packet delivered to it, with arrival times.
class SinkNode : public Node {
 public:
  SinkNode(Simulator& sim, NodeId id) : sim_(&sim), id_(id) {}
  void receive(Packet&& packet, Link* ingress) override {
    arrivals.push_back({std::move(packet), sim_->now(), ingress});
  }
  [[nodiscard]] NodeId id() const override { return id_; }

  struct Arrival {
    Packet packet;
    sim::TimePoint when;
    Link* ingress;
  };
  std::vector<Arrival> arrivals;

 private:
  Simulator* sim_;
  NodeId id_;
};

Packet make_udp(NodeId src, NodeId dst, std::uint32_t size = 1000) {
  return Packet::make(PacketType::udp_data, Protocol::udp, src, dst, size);
}

TEST(Link, DeliversAfterSerializationAndPropagation) {
  Simulator sim;
  SinkNode a(sim, 1), b(sim, 2);
  // 1000 B at 1 Gbit/s = 8 us serialization; 5 us propagation.
  Link link(sim, a, b, Duration::micros(5), 1e9);
  link.send(1, make_udp(1, 2, 1000));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals[0].when.count_nanos(), 13'000);
  EXPECT_EQ(link.delivered_count(), 1u);
}

TEST(Link, BackToBackPacketsSerializeFifo) {
  Simulator sim;
  SinkNode a(sim, 1), b(sim, 2);
  Link link(sim, a, b, Duration::micros(5), 1e9);
  for (int i = 0; i < 3; ++i) link.send(1, make_udp(1, 2, 1000));
  sim.run();
  ASSERT_EQ(b.arrivals.size(), 3u);
  // Each packet waits for the previous serialization: 8, 16, 24 us + prop.
  EXPECT_EQ(b.arrivals[0].when.count_nanos(), 13'000);
  EXPECT_EQ(b.arrivals[1].when.count_nanos(), 21'000);
  EXPECT_EQ(b.arrivals[2].when.count_nanos(), 29'000);
}

TEST(Link, DirectionsAreIndependent) {
  Simulator sim;
  SinkNode a(sim, 1), b(sim, 2);
  Link link(sim, a, b, Duration::micros(5), 1e9);
  link.send(1, make_udp(1, 2, 1000));
  link.send(2, make_udp(2, 1, 1000));
  sim.run();
  ASSERT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(b.arrivals.size(), 1u);
  // Both arrive at 13 us: no shared serialization between directions.
  EXPECT_EQ(a.arrivals[0].when.count_nanos(), 13'000);
  EXPECT_EQ(b.arrivals[0].when.count_nanos(), 13'000);
}

TEST(Link, PeerOfAndContracts) {
  Simulator sim;
  SinkNode a(sim, 1), b(sim, 2);
  Link link(sim, a, b, Duration::micros(1), 1e9);
  EXPECT_EQ(link.peer_of(1).id(), 2u);
  EXPECT_EQ(link.peer_of(2).id(), 1u);
  EXPECT_THROW((void)link.peer_of(99), sim::ContractViolation);
  EXPECT_THROW(link.send(99, make_udp(99, 1)), sim::ContractViolation);
}

TEST(Link, RejectsInvalidConstruction) {
  Simulator sim;
  SinkNode a(sim, 1), b(sim, 2);
  EXPECT_THROW(Link(sim, a, b, Duration::micros(1), 0.0),
               sim::ContractViolation);
  EXPECT_THROW(Link(sim, a, a, Duration::micros(1), 1e9),
               sim::ContractViolation);
}

TEST(Switch, FloodsUnknownThenForwardsLearned) {
  Simulator sim;
  Switch sw(100);
  SinkNode a(sim, 1), b(sim, 2), c(sim, 3);
  Link la(sim, a, sw, Duration::micros(1), 1e9);
  Link lb(sim, b, sw, Duration::micros(1), 1e9);
  Link lc(sim, c, sw, Duration::micros(1), 1e9);
  sw.attach_port(la);
  sw.attach_port(lb);
  sw.attach_port(lc);

  // a -> b: b unknown, so the switch floods to b and c (not back to a).
  la.send(1, make_udp(1, 2));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals.size(), 0u);
  EXPECT_EQ(sw.flooded_count(), 1u);
  EXPECT_EQ(sw.learned_count(), 1u);  // learned a

  // b -> a: a is known now, unicast forward; b gets learned too.
  lb.send(2, make_udp(2, 1));
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(c.arrivals.size(), 1u);  // unchanged
  EXPECT_EQ(sw.forwarded_count(), 1u);
  EXPECT_EQ(sw.learned_count(), 2u);

  // a -> b again: now forwarded, not flooded.
  la.send(1, make_udp(1, 2));
  sim.run();
  EXPECT_EQ(b.arrivals.size(), 2u);
  EXPECT_EQ(c.arrivals.size(), 1u);
  EXPECT_EQ(sw.forwarded_count(), 2u);
}

TEST(Switch, RejectsDuplicatePort) {
  Simulator sim;
  Switch sw(100);
  SinkNode a(sim, 1);
  Link la(sim, a, sw, Duration::micros(1), 1e9);
  sw.attach_port(la);
  EXPECT_THROW(sw.attach_port(la), sim::ContractViolation);
}

TEST(Netem, AppliesBaseDelay) {
  Simulator sim;
  std::vector<sim::TimePoint> arrivals;
  NetemQdisc netem(sim, sim::Rng(1), [&](Packet) {
    arrivals.push_back(sim.now());
  });
  netem.set_delay(30_ms);
  netem.enqueue(make_udp(1, 2));
  sim.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0].to_ms(), 30.0);
}

TEST(Netem, JitterStaysWithinBounds) {
  Simulator sim;
  std::vector<double> arrivals;
  NetemQdisc netem(sim, sim::Rng(2), [&](Packet) {
    arrivals.push_back(sim.now().to_ms());
  });
  netem.set_delay(30_ms);
  netem.set_jitter(2_ms);
  netem.set_prevent_reorder(false);
  for (int i = 0; i < 200; ++i) netem.enqueue(make_udp(1, 2));
  sim.run();
  for (const double t : arrivals) {
    EXPECT_GE(t, 28.0);
    EXPECT_LE(t, 32.0);
  }
}

TEST(Netem, PreventReorderKeepsFifo) {
  Simulator sim;
  std::vector<std::uint64_t> order;
  NetemQdisc netem(sim, sim::Rng(3), [&](Packet pkt) {
    order.push_back(pkt.id);
  });
  netem.set_delay(10_ms);
  netem.set_jitter(9_ms);  // strong jitter: would reorder without the guard
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 100; ++i) {
    Packet pkt = make_udp(1, 2);
    sent.push_back(pkt.id);
    netem.enqueue(std::move(pkt));
    sim.run_for(1_ms);
  }
  sim.run();
  EXPECT_EQ(order, sent);
}

TEST(Netem, LossDropsSomePackets) {
  Simulator sim;
  int delivered = 0;
  NetemQdisc netem(sim, sim::Rng(4), [&](Packet) { ++delivered; });
  netem.set_loss(0.3);
  for (int i = 0; i < 1000; ++i) netem.enqueue(make_udp(1, 2));
  sim.run();
  EXPECT_EQ(delivered + int(netem.dropped_count()), 1000);
  EXPECT_NEAR(double(netem.dropped_count()), 300.0, 60.0);
}

TEST(Netem, ContractChecks) {
  Simulator sim;
  EXPECT_THROW(NetemQdisc(sim, sim::Rng(1), nullptr),
               sim::ContractViolation);
  NetemQdisc netem(sim, sim::Rng(1), [](Packet) {});
  EXPECT_THROW(netem.set_loss(1.0), sim::ContractViolation);
  EXPECT_THROW(netem.set_loss(-0.1), sim::ContractViolation);
}

}  // namespace
}  // namespace acute::net
