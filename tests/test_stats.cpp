#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/contracts.hpp"
#include "sim/random.hpp"
#include "stats/boxplot.hpp"
#include "stats/cdf.hpp"
#include "stats/digest.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace acute::stats {
namespace {

TEST(Summary, BasicMoments) {
  const std::vector<double> sample{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s(sample);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample (n-1) stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MedianEvenAndOdd) {
  EXPECT_DOUBLE_EQ(Summary(std::vector<double>{1, 2, 3}).median(), 2.0);
  EXPECT_DOUBLE_EQ(Summary(std::vector<double>{1, 2, 3, 4}).median(), 2.5);
}

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> sample{10, 20, 30, 40};
  const Summary s(sample);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);  // R type-7
}

TEST(Summary, SingleElement) {
  const Summary s(std::vector<double>{42});
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(Summary, Ci95MatchesHandComputation) {
  // n=5, stddev=1 -> CI = t(4, .975) / sqrt(5) = 2.776 / 2.2360.
  const std::vector<double> sample{-1, -0.5, 0, 0.5, 1};
  const Summary s(sample);
  const double expected = student_t_975(4) * s.stddev() / std::sqrt(5.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), expected);
}

TEST(Summary, MeanCiStringFormat) {
  const std::vector<double> sample{1, 1, 1, 1};
  EXPECT_EQ(Summary(sample).mean_ci_string(2), "1.00 ±0.00");
}

TEST(Summary, EmptySampleViolatesContract) {
  EXPECT_THROW(Summary(std::vector<double>{}), sim::ContractViolation);
}

TEST(StudentT, KnownValuesAndInterpolation) {
  EXPECT_DOUBLE_EQ(student_t_975(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t_975(10), 2.228);
  EXPECT_DOUBLE_EQ(student_t_975(500), 1.960);
  // Between table rows: monotone decreasing.
  const double t13 = student_t_975(13);
  EXPECT_LT(t13, student_t_975(12));
  EXPECT_GT(t13, student_t_975(15));
}

TEST(BoxPlot, QuartilesAndWhiskers) {
  const std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto box = BoxPlot::from_sample(sample);
  EXPECT_DOUBLE_EQ(box.median, 5.5);
  EXPECT_DOUBLE_EQ(box.q1, 3.25);
  EXPECT_DOUBLE_EQ(box.q3, 7.75);
  EXPECT_DOUBLE_EQ(box.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 10.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxPlot, OutliersBeyondFences) {
  std::vector<double> sample{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100};
  const auto box = BoxPlot::from_sample(sample);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers.front(), 100.0);
  EXPECT_LE(box.whisker_high, 10.0);
}

TEST(BoxPlot, ToStringMentionsAllParts) {
  const auto box = BoxPlot::from_sample(std::vector<double>{1, 2, 3});
  const std::string text = box.to_string();
  EXPECT_NE(text.find("med="), std::string::npos);
  EXPECT_NE(text.find("box=["), std::string::npos);
  EXPECT_NE(text.find("out=0"), std::string::npos);
}

TEST(Cdf, EvaluatesEmpiricalFractions) {
  const std::vector<double> sample{1, 2, 3, 4};
  const Cdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
}

TEST(Cdf, QuantileIsInverse) {
  const std::vector<double> sample{10, 20, 30, 40};
  const Cdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 10.0);
}

TEST(Cdf, CurveIsMonotone) {
  const std::vector<double> sample{1, 5, 5, 7, 12};
  const auto points = Cdf(sample).curve(10);
  ASSERT_EQ(points.size(), 10u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].x, points[i - 1].x);
    EXPECT_GE(points[i].f, points[i - 1].f);
  }
  EXPECT_DOUBLE_EQ(points.back().f, 1.0);
}

TEST(Cdf, KsDistanceIdenticalIsZero) {
  const std::vector<double> sample{1, 2, 3, 4, 5};
  const Cdf a(sample), b(sample);
  EXPECT_DOUBLE_EQ(Cdf::ks_distance(a, b), 0.0);
}

TEST(Cdf, KsDistanceDisjointIsOne) {
  const Cdf a(std::vector<double>{1, 2, 3});
  const Cdf b(std::vector<double>{10, 11, 12});
  EXPECT_DOUBLE_EQ(Cdf::ks_distance(a, b), 1.0);
}

TEST(Cdf, KsDistanceIsSymmetric) {
  const Cdf a(std::vector<double>{1, 2, 3, 7});
  const Cdf b(std::vector<double>{2, 3, 4});
  EXPECT_DOUBLE_EQ(Cdf::ks_distance(a, b), Cdf::ks_distance(b, a));
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("name  | value"), std::string::npos);
  EXPECT_NE(text.find("------+------"), std::string::npos);
  EXPECT_NE(text.find("alpha | 1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, CellFormatsPrecision) {
  EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
  EXPECT_EQ(Table::cell(3.0, 0), "3");
}

TEST(Table, RowWidthMismatchViolatesContract) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), sim::ContractViolation);
}

// Property: for any sample, quantile(q) equals percentile via Summary at
// matching ranks for the extremes.
class CdfSummaryAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CdfSummaryAgreement, MinMaxAgree) {
  std::vector<double> sample;
  sim::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) sample.push_back(rng.uniform(0, 100));
  const Summary summary(sample);
  const Cdf cdf(sample);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), summary.max());
  EXPECT_DOUBLE_EQ(cdf.quantile(0.001), summary.min());
  EXPECT_DOUBLE_EQ(cdf.at(summary.max()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfSummaryAgreement,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(MergingDigest, SmallSamplesAreExactAtTheMoments) {
  MergingDigest digest;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) digest.add(x);
  EXPECT_EQ(digest.count(), 5u);
  EXPECT_DOUBLE_EQ(digest.mean(), 3.0);
  EXPECT_NEAR(digest.stddev(),
              Summary(std::vector<double>{5, 1, 3, 2, 4}).stddev(), 1e-12);
  EXPECT_DOUBLE_EQ(digest.min(), 1.0);
  EXPECT_DOUBLE_EQ(digest.max(), 5.0);
  EXPECT_DOUBLE_EQ(digest.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(digest.quantile(1.0), 5.0);
  EXPECT_NEAR(digest.quantile(0.5), 3.0, 1e-9);
}

TEST(MergingDigest, CentroidCountStaysBoundedUnderHeavyLoad) {
  MergingDigest digest(64);
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) digest.add(rng.uniform(0.0, 1.0));
  EXPECT_EQ(digest.count(), 100000u);
  EXPECT_LE(digest.centroid_count(), digest.max_centroids());
  // Uniform[0,1]: mid-range quantiles track q closely, tails are tight.
  EXPECT_NEAR(digest.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(digest.quantile(0.99), 0.99, 0.01);
  EXPECT_NEAR(digest.cdf(0.25), 0.25, 0.02);
}

TEST(MergingDigest, MergeMatchesSingleDigestOfTheUnion) {
  sim::Rng rng(11);
  MergingDigest left, right, whole;
  for (int i = 0; i < 5000; ++i) {
    const double a = rng.uniform(0.0, 10.0);
    const double b = rng.uniform(5.0, 15.0);
    left.add(a);
    right.add(b);
    whole.add(a);
    whole.add(b);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.stddev(), whole.stddev(), 1e-9);  // exact sum of squares
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
  for (const double q : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(left.quantile(q), whole.quantile(q), 0.15);
  }
  EXPECT_LE(left.centroid_count(), left.max_centroids());
}

TEST(MergingDigest, MergeIsDeterministicForAFixedOrder) {
  // The campaign merge folds shard digests in scenario order; the same
  // order must give bit-identical results every time.
  const auto build = [] {
    sim::Rng rng(3);
    std::vector<MergingDigest> shards(8);
    for (auto& shard : shards) {
      for (int i = 0; i < 400; ++i) shard.add(rng.uniform(0.0, 100.0));
    }
    MergingDigest merged;
    for (const auto& shard : shards) merged.merge(shard);
    return merged;
  };
  const MergingDigest a = build();
  const MergingDigest b = build();
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_EQ(a.quantile(q), b.quantile(q));
  }
  EXPECT_EQ(a.centroid_count(), b.centroid_count());
}

TEST(MergingDigest, SelfMergeDoublesTheSample) {
  MergingDigest digest;
  for (const double x : {1.0, 2.0, 3.0}) digest.add(x);
  digest.merge(digest);
  EXPECT_EQ(digest.count(), 6u);
  EXPECT_DOUBLE_EQ(digest.mean(), 2.0);
  EXPECT_DOUBLE_EQ(digest.min(), 1.0);
  EXPECT_DOUBLE_EQ(digest.max(), 3.0);
}

TEST(MergingDigest, RejectsContractViolations) {
  MergingDigest digest;
  EXPECT_THROW((void)digest.quantile(0.5), sim::ContractViolation);  // empty
  EXPECT_THROW((void)digest.mean(), sim::ContractViolation);
  digest.add(1.0);
  EXPECT_THROW((void)digest.quantile(1.5), sim::ContractViolation);
  EXPECT_THROW(MergingDigest(4), sim::ContractViolation);  // compression < 8
}

}  // namespace
}  // namespace acute::stats
